"""RDMA-flavoured network model.

Two transport primitives, mirroring the NAM-DB substrate Chiller builds on:

* **One-sided verbs** (:meth:`Network.one_sided`): the operation executes
  against the *target's storage* at arrival time without consuming any
  CPU at the target — the NIC does the work.  This is how the outer
  region reads, writes, and lock words (via CAS) are accessed remotely.

* **Messages / RPCs** (:meth:`Network.send`): delivered to a handler at
  the target; whatever the handler does (e.g. executing an inner region)
  costs target CPU.  Delivery on each (src, dst) channel is FIFO, the
  in-order property the paper's inner-region replication relies on
  (RDMA queue-pair semantics).

All latencies are configurable through :class:`NetworkConfig`; the
defaults put a network round trip at ~27x a local storage access,
consistent with the paper's "at least an order of magnitude" premise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .events import Simulator


@dataclass(frozen=True)
class NetworkConfig:
    """Latency and overhead constants, in microseconds."""

    local_access_us: float = 0.15
    """A storage operation against the local partition."""

    one_way_us: float = 1.7
    """One-way propagation between two servers (InfiniBand EDR class)."""

    verb_overhead_us: float = 0.3
    """NIC processing added to each one-sided verb at the target."""

    rpc_overhead_us: float = 0.4
    """Dispatch overhead added when delivering a message to a handler."""

    def one_sided_rtt(self) -> float:
        """Completion time of a remote one-sided verb."""
        return 2 * self.one_way_us + self.verb_overhead_us

    def message_delay(self) -> float:
        """Delivery delay of a one-way message."""
        return self.one_way_us + self.rpc_overhead_us


@dataclass
class NetworkStats:
    """Counters for traffic accounting (used in experiment reports)."""

    one_sided_local: int = 0
    one_sided_remote: int = 0
    messages: int = 0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)

    def total_remote_ops(self) -> int:
        return self.one_sided_remote + self.messages


class Network:
    """Connects ``n_servers`` simulated servers with FIFO channels."""

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None):
        self._sim = sim
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._handlers: dict[int, Callable[[int, Any], None]] = {}
        self._last_delivery: dict[tuple[int, int], float] = {}

    def register_handler(self, server_id: int,
                         handler: Callable[[int, Any], None]) -> None:
        """Install the message handler for ``server_id``.

        The handler receives ``(src_server_id, payload)``.
        """
        self._handlers[server_id] = handler

    def one_sided(self, src: int, dst: int, op: Callable[[], Any],
                  on_complete: Callable[[Any], None]) -> None:
        """Run ``op`` against ``dst`` as a one-sided verb.

        ``op`` executes at arrival time (no target CPU involved); its
        return value is delivered back to ``on_complete`` at ``src`` after
        the return trip.  Local operations (``src == dst``) only pay the
        local access latency.
        """
        cfg = self.config
        if src == dst:
            self.stats.one_sided_local += 1
            self._sim.schedule(cfg.local_access_us,
                               lambda: on_complete(op()))
            return
        self.stats.one_sided_remote += 1
        arrive = self._fifo_time(src, dst,
                                 cfg.one_way_us + cfg.verb_overhead_us)

        def _at_target() -> None:
            result = op()
            self._sim.schedule_at(
                self._fifo_time(dst, src, self.config.one_way_us,
                                base=self._sim.now),
                lambda: on_complete(result))

        self._sim.schedule_at(arrive, _at_target)

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Deliver ``payload`` to ``dst``'s registered handler (FIFO)."""
        if dst not in self._handlers:
            raise KeyError(f"server {dst} has no registered message handler")
        self.stats.messages += 1
        delay = (self.config.local_access_us if src == dst
                 else self.config.message_delay())
        arrive = self._fifo_time(src, dst, delay)
        handler = self._handlers[dst]
        self._sim.schedule_at(arrive, lambda: handler(src, payload))

    def _fifo_time(self, src: int, dst: int, delay: float,
                   base: float | None = None) -> float:
        """Next delivery time on the (src, dst) channel, kept monotonic."""
        key = (src, dst)
        when = (base if base is not None else self._sim.now) + delay
        last = self._last_delivery.get(key, 0.0)
        if when <= last:
            when = last + 1e-9
        self._last_delivery[key] = when
        return when
