"""RDMA-flavoured network model.

Two transport primitives, mirroring the NAM-DB substrate Chiller builds on:

* **One-sided verbs** (:meth:`Network.one_sided`): the operation executes
  against the *target's storage* at arrival time without consuming any
  CPU at the target — the NIC does the work.  This is how the outer
  region reads, writes, and lock words (via CAS) are accessed remotely.

* **Messages / RPCs** (:meth:`Network.send`): delivered to a handler at
  the target; whatever the handler does (e.g. executing an inner region)
  costs target CPU.  Delivery on each (src, dst) channel is FIFO, the
  in-order property the paper's inner-region replication relies on
  (RDMA queue-pair semantics).

A third primitive, :meth:`Network.one_sided_batch`, models **doorbell
batching**: a sender posts a chain of one-sided verbs to the same
destination with a single doorbell; the NIC processes them back-to-back
and raises one completion, so N verbs cost one round trip plus a small
per-verb NIC serialization term instead of N independent issues.  It is
only used when :attr:`NetworkConfig.doorbell_batching` is on.

All latencies are configurable through :class:`NetworkConfig`; the
defaults put a network round trip at ~27x a local storage access,
consistent with the paper's "at least an order of magnitude" premise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .events import Simulator

_UNSET = object()

VERB_NOMINAL_BYTES = 32
"""Approximate wire size of one one-sided verb (header + cacheline-ish
payload) used when the issuer provides no better estimate."""

MESSAGE_NOMINAL_BYTES = 64
"""Flat per-message estimate used when payload-walk accounting is
disabled (:attr:`NetworkConfig.account_payload_bytes` off) or a payload
is too deep to walk."""

PAYLOAD_WALK_MAX_DEPTH = 16
"""Recursion bound for :func:`approx_payload_bytes`.  Anything nested
deeper is charged the flat :data:`MESSAGE_NOMINAL_BYTES` instead of
overflowing the stack."""

_BACK_REFERENCE_BYTES = 8
"""Charge for a container the walk has already visited (a cyclic or
shared reference: serializers ship those as back-references, and
re-walking them would make the walk exponential on shared DAGs)."""

PHASE_OF_KIND = {
    "lock_read": "lock",
    "lock_insert": "lock",
    "plain_read": "lock",          # OCC's lock-free read phase
    "validate_read": "validate",
    "validate_write": "validate",
    "replicate": "replicate",
    "chiller_replicate": "replicate",
    "chiller_ack": "replicate",
    "commit": "commit",
    "release": "commit",
    "inner_commit": "commit",
    "prepare": "commit",
    "decision": "commit",
    "recover_query": "commit",
    "migrate_lock": "migrate",
    "migrate_install": "migrate",
    "migrate_remove": "migrate",
    "placement_flip": "migrate",
    "placement_lease": "migrate",
}
"""Transaction-phase bucket of each traffic kind, for the Fig.-style
bytes-by-phase breakdown (unlisted kinds land in ``other``)."""


def phase_of_kind(kind: str) -> str:
    return PHASE_OF_KIND.get(kind, "other")


def approx_payload_bytes(obj: Any, _depth: int = 0,
                         _seen: set[int] | None = None) -> int:
    """Rough serialized size of an application payload, in bytes.

    This is accounting, not serialization: containers and dataclasses
    are walked recursively, scalars get nominal sizes, and anything
    opaque (closures, handles) a flat 64.  Good enough to break traffic
    down by message kind in experiment reports.  The walk is linear in
    the number of distinct containers — each is visited once (cycles and
    shared sub-structures are charged as back-references) — and
    depth-capped at :data:`PAYLOAD_WALK_MAX_DEPTH`.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if _depth >= PAYLOAD_WALK_MAX_DEPTH:
        return MESSAGE_NOMINAL_BYTES
    if isinstance(obj, (dict, list, tuple, set, frozenset)):
        walk_items = True
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        walk_items = False
    else:
        return 64
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return _BACK_REFERENCE_BYTES
    _seen.add(id(obj))
    child = _depth + 1
    if not walk_items:
        return 8 + sum(
            approx_payload_bytes(getattr(obj, f.name), child, _seen)
            for f in dataclasses.fields(obj))
    if isinstance(obj, dict):
        return 8 + sum(approx_payload_bytes(k, child, _seen)
                       + approx_payload_bytes(v, child, _seen)
                       for k, v in obj.items())
    return 8 + sum(approx_payload_bytes(item, child, _seen) for item in obj)


@dataclass(frozen=True)
class NetworkConfig:
    """Latency and overhead constants, in microseconds."""

    local_access_us: float = 0.15
    """A storage operation against the local partition."""

    one_way_us: float = 1.7
    """One-way propagation between two servers (InfiniBand EDR class)."""

    verb_overhead_us: float = 0.3
    """NIC processing added to each one-sided verb at the target."""

    rpc_overhead_us: float = 0.4
    """Dispatch overhead added when delivering a message to a handler."""

    doorbell_batching: bool = False
    """Fuse same-destination one-sided verbs issued in one parallel round
    into a single doorbell-batched round trip.  Off by default: the
    unbatched model is the seed-calibrated baseline."""

    batched_verb_us: float = 0.05
    """NIC serialization cost of each verb after the first in a
    doorbell-batched chain (the chain shares propagation, doorbell, and
    completion)."""

    account_payload_bytes: bool = True
    """Walk message payloads to estimate their wire size per kind.  The
    walk runs on the Python hot path (one per message); turn it off for
    throughput-of-the-simulator benchmarks — messages are then charged a
    flat nominal size and ``bytes_by_kind`` becomes a message count
    proxy rather than a byte estimate."""

    bandwidth_gbps: float | None = None
    """Optional link bandwidth, in Gbit/s.  When set, every *remote*
    verb and message additionally pays a payload-serialization term —
    ``bytes × 8 / bandwidth`` — on its outbound leg, charged from the
    same per-payload byte estimates the traffic accounting uses, so a
    multi-kilobyte replicate message genuinely costs more wire time
    than a 32-byte CAS.  ``None`` (the default) keeps the
    seed-calibrated latency-only model bit-for-bit.  Local deliveries
    never pay it (no wire), and it is a property of the *simulated*
    network — the aio/mp backends measure real serialization instead."""

    def serialization_us(self, nbytes: int) -> float:
        """Wire-serialization time of ``nbytes`` at ``bandwidth_gbps``.

        ``nbytes * 8`` bits over ``bandwidth_gbps * 1e9`` bits/s,
        expressed in microseconds; 0 with the bandwidth term off.
        """
        if self.bandwidth_gbps is None:
            return 0.0
        return nbytes * 0.008 / self.bandwidth_gbps

    def one_sided_rtt(self, nbytes: int = VERB_NOMINAL_BYTES) -> float:
        """Completion time of a remote one-sided verb."""
        return (2 * self.one_way_us + self.verb_overhead_us
                + self.serialization_us(nbytes))

    def one_sided_batch_rtt(self, n_verbs: int,
                            total_nbytes: int | None = None) -> float:
        """Completion time of a doorbell-batched chain of ``n_verbs``."""
        if total_nbytes is None:
            total_nbytes = n_verbs * VERB_NOMINAL_BYTES
        return (2 * self.one_way_us + self.verb_overhead_us
                + (n_verbs - 1) * self.batched_verb_us
                + self.serialization_us(total_nbytes))

    def message_delay(self, nbytes: int = MESSAGE_NOMINAL_BYTES) -> float:
        """Delivery delay of a one-way message."""
        return (self.one_way_us + self.rpc_overhead_us
                + self.serialization_us(nbytes))


@dataclass
class NetworkStats:
    """Counters for traffic accounting (used in experiment reports).

    Wire counters (``one_sided_remote``, ``messages``, ``bytes_by_kind``)
    only ever record traffic that actually crossed between two servers;
    same-server deliveries land in the ``*_local`` counters so locality
    improvements show up as wire traffic *shrinking*, not moving.
    """

    one_sided_local: int = 0
    one_sided_remote: int = 0
    messages: int = 0
    """Messages delivered across the wire (``src != dst``)."""

    messages_local: int = 0
    """Messages a server delivered to itself (loopback, never wire)."""

    one_sided_batches: int = 0
    """Fused doorbell-batched round trips issued."""

    one_sided_batched_verbs: int = 0
    """Total verbs carried inside those fused round trips."""

    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    """Approximate payload bytes that crossed the wire, per kind."""

    local_bytes_by_kind: dict[str, int] = field(default_factory=dict)
    """Approximate payload bytes of same-server deliveries, per kind."""

    bytes_by_server_kind: dict[int, dict[str, int]] = field(
        default_factory=dict)
    """Wire bytes broken down by *issuing* server (execution engine)
    and kind — the per-executor traffic view.  Only populated for
    traffic whose recorder knows its issuer (all three backends pass
    it); kinds here always sum to ``bytes_by_kind``."""

    wire_bytes_sent: int = 0
    """Actual encoded frame bytes a real transport pushed onto its
    carrier (length prefixes included).  Zero on the sim backend — the
    simulator models sizes rather than encoding frames; on mp runs each
    worker folds its transport's counter in at quiescence, making this
    the ground-truth companion to the modeled ``bytes_by_kind`` (which
    on mp also uses actual frame sizes for cross-worker traffic but
    keeps nominal estimates for same-process deliveries)."""

    def add_bytes(self, kind: str, nbytes: int,
                  remote: bool = True, server: int | None = None) -> None:
        book = self.bytes_by_kind if remote else self.local_bytes_by_kind
        book[kind] = book.get(kind, 0) + nbytes
        if remote and server is not None:
            per = self.bytes_by_server_kind.setdefault(server, {})
            per[kind] = per.get(kind, 0) + nbytes

    # Recording helpers: the one bookkeeping implementation every
    # backend shares (the simulated Network and the asyncio runtime
    # both call these), so the wire/local split and nominal-size
    # fallbacks cannot drift between backends.

    def record_one_sided(self, kind: str, nbytes: int | None,
                         remote: bool, server: int | None = None) -> None:
        if remote:
            self.one_sided_remote += 1
        else:
            self.one_sided_local += 1
        self.add_bytes(kind, VERB_NOMINAL_BYTES if nbytes is None
                       else nbytes, remote=remote, server=server)

    def record_message(self, kind: str, nbytes: int, remote: bool,
                       server: int | None = None) -> None:
        if remote:
            self.messages += 1
        else:
            self.messages_local += 1
        self.add_bytes(kind, nbytes, remote=remote, server=server)

    def record_batch(self, kinds: Iterable[tuple[str, int | None]],
                     server: int | None = None) -> int:
        """Account one fused doorbell chain; returns its total bytes."""
        self.one_sided_batches += 1
        total = 0
        n_verbs = 0
        for kind, nbytes in kinds:
            size = VERB_NOMINAL_BYTES if nbytes is None else nbytes
            self.add_bytes(kind, size, server=server)
            total += size
            n_verbs += 1
        self.one_sided_batched_verbs += n_verbs
        return total

    def timeline_snapshot(self) -> dict[str, float]:
        """Cumulative counters for the live metrics timeline."""
        return {"wire_verbs": self.one_sided_remote,
                "wire_messages": self.messages,
                "wire_bytes": sum(self.bytes_by_kind.values()),
                "wire_bytes_sent": self.wire_bytes_sent}

    def merge_from(self, other: "NetworkStats") -> None:
        """Fold another process's counters into this one (mp runs merge
        each worker's stats into the parent-side result)."""
        self.one_sided_local += other.one_sided_local
        self.one_sided_remote += other.one_sided_remote
        self.messages += other.messages
        self.messages_local += other.messages_local
        self.one_sided_batches += other.one_sided_batches
        self.one_sided_batched_verbs += other.one_sided_batched_verbs
        self.wire_bytes_sent += other.wire_bytes_sent
        for kind, nbytes in other.bytes_by_kind.items():
            self.add_bytes(kind, nbytes, remote=True)
        for kind, nbytes in other.local_bytes_by_kind.items():
            self.add_bytes(kind, nbytes, remote=False)
        for server, per in other.bytes_by_server_kind.items():
            mine = self.bytes_by_server_kind.setdefault(server, {})
            for kind, nbytes in per.items():
                mine[kind] = mine.get(kind, 0) + nbytes

    def total_remote_ops(self) -> int:
        """Round trips / deliveries that crossed the wire.  A fused
        batch counts once, however many verbs it carries; local
        deliveries never count."""
        return self.one_sided_remote + self.one_sided_batches + self.messages

    def total_bytes(self) -> int:
        """Bytes that crossed the wire (local deliveries excluded)."""
        return sum(self.bytes_by_kind.values())

    def total_local_bytes(self) -> int:
        return sum(self.local_bytes_by_kind.values())

    # -- Fig.-style phase breakdowns --------------------------------------

    def bytes_by_phase(self) -> dict[str, int]:
        """Wire bytes folded into transaction phases
        (lock/validate/replicate/commit/migrate/other)."""
        phases: dict[str, int] = {}
        for kind, nbytes in self.bytes_by_kind.items():
            phase = phase_of_kind(kind)
            phases[phase] = phases.get(phase, 0) + nbytes
        return phases

    def bytes_by_server_phase(self) -> dict[int, dict[str, int]]:
        """Per-executor phase breakdown: issuing server -> phase -> bytes."""
        out: dict[int, dict[str, int]] = {}
        for server, per in sorted(self.bytes_by_server_kind.items()):
            phases: dict[str, int] = {}
            for kind, nbytes in per.items():
                phase = phase_of_kind(kind)
                phases[phase] = phases.get(phase, 0) + nbytes
            out[server] = phases
        return out


class Network:
    """Connects ``n_servers`` simulated servers with FIFO channels."""

    def __init__(self, sim: Simulator, config: NetworkConfig | None = None):
        self._sim = sim
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()
        self._handlers: dict[int, Callable[[int, Any], None]] = {}
        self._last_delivery: dict[tuple[int, int], float] = {}

    def register_handler(self, server_id: int,
                         handler: Callable[[int, Any], None]) -> None:
        """Install the message handler for ``server_id``.

        The handler receives ``(src_server_id, payload)``.
        """
        self._handlers[server_id] = handler

    def one_sided(self, src: int, dst: int, op: Callable[[], Any],
                  on_complete: Callable[[Any], None],
                  kind: str = "one_sided",
                  nbytes: int | None = None) -> None:
        """Run ``op`` against ``dst`` as a one-sided verb.

        ``op`` executes at arrival time (no target CPU involved); its
        return value is delivered back to ``on_complete`` at ``src`` after
        the return trip.  Local operations (``src == dst``) only pay the
        local access latency.  ``kind``/``nbytes`` feed the per-kind
        traffic accounting.
        """
        cfg = self.config
        self.stats.record_one_sided(kind, nbytes, remote=src != dst,
                                    server=src)
        if src == dst:
            self._sim.schedule(cfg.local_access_us,
                               lambda: on_complete(op()))
            return
        size = VERB_NOMINAL_BYTES if nbytes is None else nbytes
        arrive = self._fifo_time(src, dst,
                                 cfg.one_way_us + cfg.verb_overhead_us
                                 + cfg.serialization_us(size))

        def _at_target() -> None:
            result = op()
            self._sim.schedule_at(
                self._fifo_time(dst, src, self.config.one_way_us,
                                base=self._sim.now),
                lambda: on_complete(result))

        self._sim.schedule_at(arrive, _at_target)

    def one_sided_batch(self, src: int, dst: int,
                        ops: Sequence[Callable[[], Any]],
                        on_complete: Callable[[list], None],
                        kinds: Iterable[tuple[str, int | None]] | None = None,
                        ) -> None:
        """Issue a doorbell-batched chain of verbs in one round trip.

        All ``ops`` execute back-to-back at ``dst``'s arrival time; one
        completion delivers the list of their results (in ``ops`` order)
        back to ``src``.  ``kinds`` optionally carries per-verb
        ``(kind, nbytes)`` pairs for traffic accounting — the payloads
        still cross the wire even though the round trips are fused.
        Degenerate chains (one verb, or a local target) fall back to
        :meth:`one_sided` semantics via the caller; this primitive
        insists on a genuinely remote multi-verb chain.
        """
        if src == dst:
            raise ValueError("doorbell batching is a NIC-to-NIC primitive; "
                             "local verbs do not ring a doorbell")
        if len(ops) < 2:
            raise ValueError("a doorbell batch needs at least two verbs")
        cfg = self.config
        total_bytes = self.stats.record_batch(
            kinds if kinds is not None
            else (("one_sided", None),) * len(ops), server=src)
        arrive = self._fifo_time(
            src, dst, cfg.one_way_us + cfg.verb_overhead_us
            + (len(ops) - 1) * cfg.batched_verb_us
            + cfg.serialization_us(total_bytes))

        def _at_target() -> None:
            results = [op() for op in ops]
            self._sim.schedule_at(
                self._fifo_time(dst, src, self.config.one_way_us,
                                base=self._sim.now),
                lambda: on_complete(results))

        self._sim.schedule_at(arrive, _at_target)

    def send(self, src: int, dst: int, payload: Any,
             kind: str = "message", nbytes: int | None = None,
             size_of: Any = _UNSET) -> None:
        """Deliver ``payload`` to ``dst``'s registered handler (FIFO).

        Byte accounting uses ``nbytes`` if given, else estimates from
        ``size_of`` (the application-level body, when ``payload`` is a
        plumbing wrapper holding continuations), else from ``payload``.
        """
        if dst not in self._handlers:
            raise KeyError(f"server {dst} has no registered message handler")
        if nbytes is None:
            if self.config.account_payload_bytes:
                nbytes = approx_payload_bytes(
                    payload if size_of is _UNSET else size_of)
            else:
                nbytes = MESSAGE_NOMINAL_BYTES
        self.stats.record_message(kind, nbytes, remote=src != dst,
                                  server=src)
        delay = (self.config.local_access_us if src == dst
                 else self.config.message_delay(nbytes))
        arrive = self._fifo_time(src, dst, delay)
        handler = self._handlers[dst]
        self._sim.schedule_at(arrive, lambda: handler(src, payload))

    def _fifo_time(self, src: int, dst: int, delay: float,
                   base: float | None = None) -> float:
        """Next delivery time on the (src, dst) channel, kept monotonic."""
        key = (src, dst)
        when = (base if base is not None else self._sim.now) + delay
        last = self._last_delivery.get(key, 0.0)
        if when <= last:
            when = last + 1e-9
        self._last_delivery[key] = when
        return when
