"""Effect interpretation runtime: how yielded effects get scheduled.

:class:`EffectRuntime` owns everything between a coroutine yielding an
:class:`~repro.sim.effects.Effect` and that coroutine being resumed with
the result: task bookkeeping, effect dispatch, fan-out/fan-in for
:class:`~repro.sim.effects.All`, RPC request/reply plumbing, and the
doorbell-batching fast path.  The per-server
:class:`~repro.sim.coroutines.Engine` is only a thin facade over one
runtime instance; alternate backends (async, multiprocess, real
sockets) can replace the runtime without touching the effect vocabulary
or any executor code.

**Doorbell batching.**  Real RDMA NICs let a sender post a chain of work
requests with a single doorbell; the NIC processes them back-to-back and
raises one completion.  With
:attr:`~repro.sim.network.NetworkConfig.doorbell_batching` enabled, the
runtime groups the one-sided verbs inside an ``All`` by destination
server and issues one fused round trip per destination through
:meth:`~repro.sim.network.Network.one_sided_batch`; explicit
:class:`~repro.sim.effects.BatchedOneSided` effects emitted by the
transaction layers take the same path.  With the knob off (the default)
every verb is issued individually, byte-for-byte reproducing the
unbatched simulation.
"""

from __future__ import annotations

from typing import Any, Callable

from .cpu import Core
from .effects import (All, Await, BatchedOneSided, Compute, Coroutine,
                      Effect, OneSided, OneWay, Rpc, Sleep)
from .events import Simulator
from .network import Network


class _Task:
    __slots__ = ("gen", "on_done")

    def __init__(self, gen: Coroutine, on_done: Callable[[Any], None] | None):
        self.gen = gen
        self.on_done = on_done


def _payload_kind(payload: Any, default: str) -> str:
    """Traffic-accounting kind of an application payload.

    The transaction layers address RPCs as ``(kind, body)`` tuples (see
    ``Database.register_rpc``); anything else falls back to ``default``.
    """
    if (isinstance(payload, tuple) and payload
            and isinstance(payload[0], str)):
        return payload[0]
    return default


class EffectRuntime:
    """Drives coroutines for one server, interpreting yielded effects.

    The runtime multiplexes any number of tasks over one simulated
    :class:`~repro.sim.cpu.Core` and one shared
    :class:`~repro.sim.network.Network`.  Incoming RPCs spawn handler
    coroutines on this same runtime (and therefore compete for its CPU),
    exactly like the worker coroutines in the paper.
    """

    def __init__(self, sim: Simulator, network: Network, server_id: int,
                 core: Core | None = None):
        self.sim = sim
        self.network = network
        self.server_id = server_id
        self.core = core or Core(sim)
        self.active_tasks = 0
        self.rpc_handler: Callable[[int, Any], Coroutine] | None = None

    # -- task scheduling -------------------------------------------------

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None) -> None:
        """Start driving a coroutine; ``on_done`` receives its return."""
        self.active_tasks += 1
        self._advance(_Task(gen, on_done), None)

    def _advance(self, task: _Task, value: Any) -> None:
        try:
            effect = task.gen.send(value)
        except StopIteration as stop:
            self.active_tasks -= 1
            if task.on_done is not None:
                task.on_done(stop.value)
            return
        self.perform(effect, lambda result: self._advance(task, result))

    # -- effect dispatch -------------------------------------------------

    def perform(self, effect: Effect,
                cont: Callable[[Any], None]) -> None:
        """Interpret one effect; ``cont`` receives its result."""
        if isinstance(effect, Compute):
            self.core.execute(effect.cost, lambda: cont(None))
        elif isinstance(effect, OneSided):
            self.network.one_sided(self.server_id, effect.target,
                                   effect.op, cont,
                                   kind=effect.kind, nbytes=effect.nbytes)
        elif isinstance(effect, BatchedOneSided):
            self._perform_batch(effect, cont)
        elif isinstance(effect, Rpc):
            self.send_rpc(effect, cont)
        elif isinstance(effect, Sleep):
            self.sim.schedule(effect.delay, lambda: cont(None))
        elif isinstance(effect, Await):
            if effect.signal.fired:
                self.sim.schedule(0.0,
                                  lambda: cont(effect.signal.value))
            else:
                effect.signal._waiters.append(cont)
        elif isinstance(effect, All):
            self._perform_all(effect, cont)
        else:
            raise TypeError(f"unknown effect {effect!r}")

    def _perform_batch(self, effect: BatchedOneSided,
                       cont: Callable[[Any], None]) -> None:
        """A per-destination verb group: fuse it if the model allows.

        Local groups and single verbs gain nothing from a doorbell, and
        with batching disabled the group must behave exactly like the
        flat ``All`` it replaced — all three cases fall back to
        individual verbs gathered in issue order.
        """
        ops = effect.ops
        sizes = effect.per_verb_nbytes()
        if (len(ops) >= 2 and effect.target != self.server_id
                and self.network.config.doorbell_batching):
            kinds = [(effect.kind, nbytes) for nbytes in sizes]
            self.network.one_sided_batch(self.server_id, effect.target,
                                         ops, cont, kinds=kinds)
            return
        self._perform_all(
            All([OneSided(effect.target, op, kind=effect.kind,
                          nbytes=nbytes)
                 for op, nbytes in zip(ops, sizes)]),
            cont)

    def _perform_all(self, effect: All,
                     cont: Callable[[Any], None]) -> None:
        subs = effect.effects
        n = len(subs)
        if n == 0:
            # No sub-effects: resume immediately (still asynchronously, so
            # callers cannot observe a reentrant resume).
            self.sim.schedule(0.0, lambda: cont([]))
            return
        results: list[Any] = [None] * n

        # With doorbell batching on, remote one-sided verbs sharing a
        # destination are fused into one round trip each; everything
        # else (local verbs, RPCs, nested Alls, ...) runs individually.
        fused: dict[int, list[int]] = {}
        if self.network.config.doorbell_batching:
            by_target: dict[int, list[int]] = {}
            for i, sub in enumerate(subs):
                if (isinstance(sub, OneSided)
                        and sub.target != self.server_id):
                    by_target.setdefault(sub.target, []).append(i)
            fused = {t: idxs for t, idxs in by_target.items()
                     if len(idxs) >= 2}
        in_batch = {i for idxs in fused.values() for i in idxs}

        remaining = [n - len(in_batch) + len(fused)]

        def finish_one() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                cont(results)

        def collector(index: int) -> Callable[[Any], None]:
            def collect(value: Any) -> None:
                results[index] = value
                finish_one()
            return collect

        def batch_collector(idxs: list[int]) -> Callable[[list], None]:
            def collect(values: list) -> None:
                for j, value in zip(idxs, values):
                    results[j] = value
                finish_one()
            return collect

        issued: set[int] = set()
        for i, sub in enumerate(subs):
            if i not in in_batch:
                self.perform(sub, collector(i))
                continue
            target = sub.target
            if target in issued:
                continue  # already went out with the group's first verb
            issued.add(target)
            idxs = fused[target]
            self.network.one_sided_batch(
                self.server_id, target,
                tuple(subs[j].op for j in idxs),
                batch_collector(idxs),
                kinds=[(subs[j].kind, subs[j].nbytes) for j in idxs])

    # -- RPC plumbing ----------------------------------------------------

    def send_rpc(self, effect: Rpc, cont: Callable[[Any], None]) -> None:
        self.network.send(self.server_id, effect.target,
                          _RpcRequest(self.server_id, effect.payload, cont),
                          kind=_payload_kind(effect.payload, "rpc"),
                          nbytes=None, size_of=effect.payload)

    def post(self, target: int, payload: Any) -> None:
        """Fire-and-forget message to ``target`` (no reply awaited)."""
        self.network.send(self.server_id, target, OneWay(payload),
                          kind=_payload_kind(payload, "one_way"),
                          nbytes=None, size_of=payload)

    def on_message(self, src: int, payload: Any) -> None:
        """Network delivery entry point for this server."""
        if isinstance(payload, _RpcRequest):
            if self.rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received an RPC but has no "
                    f"handler installed")
            handler_gen = self.rpc_handler(src, payload.payload)
            self.spawn(handler_gen,
                       on_done=lambda reply: self.network.send(
                           self.server_id, src, _RpcReply(payload, reply),
                           kind="rpc_reply", size_of=reply))
        elif isinstance(payload, _RpcReply):
            payload.request.cont(payload.value)
        elif isinstance(payload, OneWay):
            if self.rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received a message but has "
                    f"no handler installed")
            self.spawn(self.rpc_handler(src, payload.payload))
        else:
            raise TypeError(f"unexpected network payload {payload!r}")


class _RpcRequest:
    __slots__ = ("src", "payload", "cont")

    def __init__(self, src: int, payload: Any, cont: Callable[[Any], None]):
        self.src = src
        self.payload = payload
        self.cont = cont


class _RpcReply:
    __slots__ = ("request", "value")

    def __init__(self, request: _RpcRequest, value: Any):
        self.request = request
        self.value = value
