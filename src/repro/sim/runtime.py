"""Effect interpretation runtimes: how yielded effects get scheduled.

:class:`EffectRuntimeBase` owns everything between a coroutine yielding
an :class:`~repro.sim.effects.Effect` and that coroutine being resumed
with the result: task bookkeeping, effect dispatch, fan-out/fan-in for
:class:`~repro.sim.effects.All`, RPC request/reply plumbing, and the
doorbell-batching grouping.  Those are *semantics* shared by every
backend; only the primitive operations — run CPU work, move a verb or a
message, defer a continuation — differ between a simulated cluster and
a real transport.  Backends implement the small ``_do_*`` /
``_send_payload`` surface:

* :class:`EffectRuntime` (this module) interprets effects over the
  discrete-event :class:`~repro.sim.events.Simulator`, a
  :class:`~repro.sim.cpu.Core`, and the RDMA-flavoured
  :class:`~repro.sim.network.Network`.  The per-server
  :class:`~repro.sim.coroutines.Engine` is a thin facade over one
  instance.
* :class:`~repro.sim.aio_runtime.AsyncioEffectRuntime` interprets the
  same vocabulary over an asyncio event loop and real (or loopback)
  transports — wall-clock time instead of simulated microseconds.

**Doorbell batching.**  Real RDMA NICs let a sender post a chain of work
requests with a single doorbell; the NIC processes them back-to-back and
raises one completion.  With
:attr:`~repro.sim.network.NetworkConfig.doorbell_batching` enabled, the
runtime groups the one-sided verbs inside an ``All`` by destination
server and issues one fused round trip per destination; explicit
:class:`~repro.sim.effects.BatchedOneSided` effects emitted by the
transaction layers take the same path.  With the knob off (the default)
every verb is issued individually, byte-for-byte reproducing the
unbatched simulation.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..obs.tracer import NOOP_TRACER
from .cpu import Core
from .effects import (All, Await, BatchedOneSided, Compute, Coroutine,
                      Effect, OneSided, OneWay, Rpc, Sleep)
from .events import Simulator
from .network import Network


class _Task:
    __slots__ = ("gen", "on_done", "trace")

    def __init__(self, gen: Coroutine, on_done: Callable[[Any], None] | None,
                 trace: int = 0):
        self.gen = gen
        self.on_done = on_done
        self.trace = trace


def _payload_kind(payload: Any, default: str) -> str:
    """Traffic-accounting kind of an application payload.

    The transaction layers address RPCs as ``(kind, body)`` tuples (see
    ``Database.register_rpc``); anything else falls back to ``default``.
    """
    if (isinstance(payload, tuple) and payload
            and isinstance(payload[0], str)):
        return payload[0]
    return default


class EffectRuntimeBase:
    """Backend-neutral effect semantics for one server.

    Subclasses provide the primitives (CPU, sleep, verbs, messages,
    deferral); everything above those — task driving, ``All`` fan-in,
    batching grouping, RPC plumbing — is shared, so the simulated and
    asyncio runtimes cannot drift apart in *meaning*, only in *cost*.
    """

    __slots__ = ("server_id", "active_tasks", "rpc_handler",
                 "dispatch_context", "tracer", "current_trace",
                 "_current_task")

    def __init__(self, server_id: int):
        self.server_id = server_id
        self.active_tasks = 0
        self.rpc_handler: Callable[[int, Any], Coroutine] | None = None
        self.dispatch_context: Any = None
        """The :class:`~repro.sim.codec.DispatchContext` op descriptors
        arriving over a serialization boundary are re-bound to;
        installed by the database layer when it wires storage."""
        self.tracer = NOOP_TRACER
        """Per-run span sink (see :mod:`repro.obs`); the module-level
        no-op unless the harness installs a live tracer."""
        self.current_trace = 0
        """Trace id of the task being advanced right now (0 = untraced).
        Re-established from the task on every resume, so continuations
        and RPC handlers inherit the context of the request they serve."""
        self._current_task: _Task | None = None

    # -- task scheduling -------------------------------------------------

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None,
              trace: int = 0) -> None:
        """Start driving a coroutine; ``on_done`` receives its return."""
        self.active_tasks += 1
        self._task_started()
        self._advance(_Task(gen, on_done, trace), None)

    def set_trace(self, trace: int) -> None:
        """Attach ``trace`` to the currently-advancing task.

        Called by the transaction layer when a request's trace id is
        allocated after its task already started (retries reuse the
        task); sticks to the task so later resumes keep the context.
        """
        task = self._current_task
        if task is not None:
            task.trace = trace
        self.current_trace = trace

    def _advance(self, task: _Task, value: Any) -> None:
        self._current_task = task
        self.current_trace = task.trace
        try:
            effect = task.gen.send(value)
        except StopIteration as stop:
            self.active_tasks -= 1
            if task.on_done is not None:
                task.on_done(stop.value)
            self._task_finished()
            return
        self.perform(effect, lambda result: self._advance(task, result))

    def _task_started(self) -> None:
        """Hook: a task became active (used by backends with a latch)."""

    def _task_finished(self) -> None:
        """Hook: a task ran to completion."""

    # -- effect dispatch -------------------------------------------------

    def perform(self, effect: Effect,
                cont: Callable[[Any], None]) -> None:
        """Interpret one effect; ``cont`` receives its result.

        Dispatch is one dict probe on the effect's concrete class (see
        :data:`_EFFECT_DISPATCH`) — this is the hottest call in every
        backend, entered once per yielded effect.
        """
        handler = _EFFECT_DISPATCH.get(effect.__class__)
        if handler is None:
            handler = _resolve_dispatch(effect)
        handler(self, effect, cont)

    def _perform_compute(self, effect: Compute,
                         cont: Callable[[Any], None]) -> None:
        self._do_compute(effect.cost, cont)

    def _perform_one_sided(self, effect: OneSided,
                           cont: Callable[[Any], None]) -> None:
        self._one_sided(effect.target, effect.op, cont,
                        kind=effect.kind, nbytes=effect.nbytes)

    def _perform_rpc(self, effect: Rpc,
                     cont: Callable[[Any], None]) -> None:
        # via self so subclass send_rpc overrides keep working
        self.send_rpc(effect, cont)

    def _perform_sleep(self, effect: Sleep,
                       cont: Callable[[Any], None]) -> None:
        self._do_sleep(effect.delay, cont)

    def _perform_await(self, effect: Await,
                       cont: Callable[[Any], None]) -> None:
        if effect.signal.fired:
            value = effect.signal.value
            self._defer(lambda: cont(value))
        else:
            effect.signal._waiters.append(cont)

    def _perform_batch(self, effect: BatchedOneSided,
                       cont: Callable[[Any], None]) -> None:
        """A per-destination verb group: fuse it if the model allows.

        Local groups and single verbs gain nothing from a doorbell, and
        with batching disabled the group must behave exactly like the
        flat ``All`` it replaced — all three cases fall back to
        individual verbs gathered in issue order.
        """
        ops = effect.ops
        sizes = effect.per_verb_nbytes()
        if (len(ops) >= 2 and effect.target != self.server_id
                and self._batching_enabled()):
            kinds = [(effect.kind, nbytes) for nbytes in sizes]
            self._one_sided_batch(effect.target, ops, cont, kinds=kinds)
            return
        self._perform_all(
            All([OneSided(effect.target, op, kind=effect.kind,
                          nbytes=nbytes)
                 for op, nbytes in zip(ops, sizes)]),
            cont)

    def _perform_all(self, effect: All,
                     cont: Callable[[Any], None]) -> None:
        subs = effect.effects
        n = len(subs)
        if n == 0:
            # No sub-effects: resume immediately (still asynchronously, so
            # callers cannot observe a reentrant resume).
            self._defer(lambda: cont([]))
            return
        results: list[Any] = [None] * n

        # With doorbell batching on, remote one-sided verbs sharing a
        # destination are fused into one round trip each; everything
        # else (local verbs, RPCs, nested Alls, ...) runs individually.
        fused: dict[int, list[int]] = {}
        if self._batching_enabled():
            by_target: dict[int, list[int]] = {}
            for i, sub in enumerate(subs):
                if (isinstance(sub, OneSided)
                        and sub.target != self.server_id):
                    by_target.setdefault(sub.target, []).append(i)
            fused = {t: idxs for t, idxs in by_target.items()
                     if len(idxs) >= 2}
        in_batch = {i for idxs in fused.values() for i in idxs}

        remaining = [n - len(in_batch) + len(fused)]

        def finish_one() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                cont(results)

        def collector(index: int) -> Callable[[Any], None]:
            def collect(value: Any) -> None:
                results[index] = value
                finish_one()
            return collect

        def batch_collector(idxs: list[int]) -> Callable[[list], None]:
            def collect(values: list) -> None:
                for j, value in zip(idxs, values):
                    results[j] = value
                finish_one()
            return collect

        issued: set[int] = set()
        for i, sub in enumerate(subs):
            if i not in in_batch:
                self.perform(sub, collector(i))
                continue
            target = sub.target
            if target in issued:
                continue  # already went out with the group's first verb
            issued.add(target)
            idxs = fused[target]
            self._one_sided_batch(
                target,
                tuple(subs[j].op for j in idxs),
                batch_collector(idxs),
                kinds=[(subs[j].kind, subs[j].nbytes) for j in idxs])

    # -- RPC plumbing ----------------------------------------------------

    def send_rpc(self, effect: Rpc, cont: Callable[[Any], None]) -> None:
        self.send_payload(effect.target,
                          _RpcRequest(self.server_id, effect.payload, cont,
                                      self.current_trace),
                          kind=_payload_kind(effect.payload, "rpc"),
                          size_of=effect.payload)

    def post(self, target: int, payload: Any) -> None:
        """Fire-and-forget message to ``target`` (no reply awaited)."""
        self.send_payload(target, OneWay(payload),
                          kind=_payload_kind(payload, "one_way"),
                          size_of=payload)

    def on_message(self, src: int, payload: Any) -> None:
        """Delivery entry point for this server (any transport)."""
        if isinstance(payload, _RpcRequest):
            if self.rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received an RPC but has no "
                    f"handler installed")
            handler_gen = self.rpc_handler(src, payload.payload)
            self.spawn(handler_gen,
                       on_done=lambda reply: self.send_payload(
                           src, _RpcReply(payload, reply),
                           kind="rpc_reply", size_of=reply),
                       trace=payload.trace)
        elif isinstance(payload, _RpcReply):
            payload.request.cont(payload.value)
        elif isinstance(payload, OneWay):
            if self.rpc_handler is None:
                raise RuntimeError(
                    f"server {self.server_id} received a message but has "
                    f"no handler installed")
            self.spawn(self.rpc_handler(src, payload.payload))
        else:
            raise TypeError(f"unexpected network payload {payload!r}")

    # -- backend primitives ----------------------------------------------

    def _batching_enabled(self) -> bool:
        raise NotImplementedError

    def _defer(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` soon, never reentrantly within the caller's frame."""
        raise NotImplementedError

    def _do_compute(self, cost: float, cont: Callable[[Any], None]) -> None:
        raise NotImplementedError

    def _do_sleep(self, delay: float, cont: Callable[[Any], None]) -> None:
        raise NotImplementedError

    def _one_sided(self, target: int, op: Callable[[], Any],
                   cont: Callable[[Any], None],
                   kind: str, nbytes: int | None) -> None:
        raise NotImplementedError

    def _one_sided_batch(self, target: int,
                         ops: Sequence[Callable[[], Any]],
                         cont: Callable[[list], None],
                         kinds: list[tuple[str, int | None]]) -> None:
        raise NotImplementedError

    def send_payload(self, target: int, payload: Any,
                     kind: str, size_of: Any) -> None:
        """Deliver ``payload`` to ``target``'s :meth:`on_message` (FIFO
        per (src, dst) channel); ``size_of`` is the application-level
        body used for byte accounting."""
        raise NotImplementedError


_EFFECT_DISPATCH: dict[type, Callable] = {
    Compute: EffectRuntimeBase._perform_compute,
    OneSided: EffectRuntimeBase._perform_one_sided,
    BatchedOneSided: EffectRuntimeBase._perform_batch,
    Rpc: EffectRuntimeBase._perform_rpc,
    Sleep: EffectRuntimeBase._perform_sleep,
    Await: EffectRuntimeBase._perform_await,
    All: EffectRuntimeBase._perform_all,
}
"""Per-class effect dispatch: the isinstance ladder this replaced cost
up to seven type checks per effect; the table costs one hash probe.
Entries are plain functions fetched from the class, so primitives and
``send_rpc`` still dispatch dynamically through ``self`` inside them."""


def _resolve_dispatch(effect: Any) -> Callable:
    """Slow path for effect *subclasses*: walk the MRO once, cache."""
    for base in type(effect).__mro__:
        handler = _EFFECT_DISPATCH.get(base)
        if handler is not None:
            _EFFECT_DISPATCH[type(effect)] = handler
            return handler
    raise TypeError(f"unknown effect {effect!r}")


class EffectRuntime(EffectRuntimeBase):
    """Drives coroutines for one *simulated* server.

    The runtime multiplexes any number of tasks over one simulated
    :class:`~repro.sim.cpu.Core` and one shared
    :class:`~repro.sim.network.Network`.  Incoming RPCs spawn handler
    coroutines on this same runtime (and therefore compete for its CPU),
    exactly like the worker coroutines in the paper.
    """

    __slots__ = ("sim", "network", "core")

    def __init__(self, sim: Simulator, network: Network, server_id: int,
                 core: Core | None = None):
        super().__init__(server_id)
        self.sim = sim
        self.network = network
        self.core = core or Core(sim)

    def _batching_enabled(self) -> bool:
        return self.network.config.doorbell_batching

    def _defer(self, fn: Callable[[], None]) -> None:
        self.sim.schedule(0.0, fn)

    def _do_compute(self, cost: float, cont: Callable[[Any], None]) -> None:
        self.core.execute(cost, lambda: cont(None))

    def _do_sleep(self, delay: float, cont: Callable[[Any], None]) -> None:
        self.sim.schedule(delay, lambda: cont(None))

    def _one_sided(self, target: int, op: Callable[[], Any],
                   cont: Callable[[Any], None],
                   kind: str, nbytes: int | None) -> None:
        self.network.one_sided(self.server_id, target, op, cont,
                               kind=kind, nbytes=nbytes)

    def _one_sided_batch(self, target: int,
                         ops: Sequence[Callable[[], Any]],
                         cont: Callable[[list], None],
                         kinds: list[tuple[str, int | None]]) -> None:
        self.network.one_sided_batch(self.server_id, target, ops, cont,
                                     kinds=kinds)

    def send_payload(self, target: int, payload: Any,
                     kind: str, size_of: Any) -> None:
        self.network.send(self.server_id, target, payload,
                          kind=kind, nbytes=None, size_of=size_of)


class _RpcRequest:
    __slots__ = ("src", "payload", "cont", "trace")

    def __init__(self, src: int, payload: Any, cont: Callable[[Any], None],
                 trace: int = 0):
        self.src = src
        self.payload = payload
        self.cont = cont
        self.trace = trace


class _RpcReply:
    __slots__ = ("request", "value")

    def __init__(self, request: _RpcRequest, value: Any):
        self.request = request
        self.value = value
