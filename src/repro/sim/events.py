"""Discrete-event simulation core: a clock and an ordered event queue.

All times are in **microseconds** of simulated time.  Events scheduled for
the same instant fire in scheduling order (ties broken by a monotonically
increasing sequence number), which makes every run fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call more than once)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A minimal, deterministic discrete-event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self.probe: Callable[[float], Any] | None = None
        """Observer called as ``probe(now)`` after each fired event.
        Must be pure bookkeeping — it runs outside the event queue, so
        anything it does that schedules events or draws randomness
        would break the bit-identicality that observers exist to
        preserve.  The metrics timeline sampler installs itself here;
        None (the default) costs one load + branch per event."""

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    def schedule(self, delay: float, fn: Callable[[], Any]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], Any]) -> EventHandle:
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        handle = EventHandle(time, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = handle.time
            self._events_fired += 1
            handle.fn()
            if self.probe is not None:
                self.probe(self.now)
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the queue drains (or ``max_events`` events fired)."""
        remaining = max_events
        while self.step():
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return

    def run_until(self, time: float) -> None:
        """Run all events with a timestamp ``<= time``; advance now to it."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
        self.now = max(self.now, time)

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the queue."""
        return sum(1 for h in self._queue if not h.cancelled)
