"""The effect vocabulary: everything a transaction coroutine may yield.

Chiller hides network latency by running each transaction as a coroutine
on a per-core execution engine: when one transaction blocks on the
network, the engine switches to another (Section 6 of the paper).  We use
plain Python generators as coroutines.  A transaction coroutine *yields
effects* and is resumed with their results:

* :class:`Compute` — consume this engine's CPU for ``cost`` microseconds.
* :class:`OneSided` — a one-sided verb against a (possibly remote)
  partition's storage; resumes with the verb's return value.
* :class:`BatchedOneSided` — several one-sided verbs against the *same*
  destination; resumes with the list of their return values.  With
  doorbell batching enabled the runtime fuses them into one round trip.
* :class:`Rpc` — send a payload to another engine's RPC handler (itself a
  coroutine, consuming the *remote* CPU); resumes with the reply.
* :class:`All` — perform several effects concurrently; resumes with the
  list of their results (used, e.g., to lock records on many servers in
  one round trip).
* :class:`Sleep` — pure delay.
* :class:`Await` — suspend until a :class:`Signal` fires.

Sub-procedures compose with ``yield from``.  Interpreting these effects
is the job of :class:`~repro.sim.runtime.EffectRuntime`; this module
deliberately knows nothing about scheduling.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

Coroutine = Generator["Effect", Any, Any]


class Effect:
    """Base class for everything a transaction coroutine may yield."""

    __slots__ = ()


class Compute(Effect):
    """Consume ``cost`` microseconds of the engine's CPU."""

    __slots__ = ("cost",)

    def __init__(self, cost: float):
        self.cost = cost


class OneSided(Effect):
    """Execute ``op`` against server ``target``'s storage via the NIC.

    ``op`` is either a zero-argument callable (legal only while the
    target lives in the issuing process — the in-process backends and
    genuinely local verbs) or, in its **descriptor form**, a
    :class:`~repro.sim.codec.OpDescriptor`: the same operation as
    picklable data, which any backend can ship across a real process
    boundary and dispatch server-side.  The transaction layers emit
    descriptors for every record verb; raw closures remain a documented
    fallback for local-only payloads.

    ``kind`` and ``nbytes`` feed the network's per-kind traffic
    accounting; ``nbytes=None`` uses a nominal verb size.
    """

    __slots__ = ("target", "op", "kind", "nbytes")

    def __init__(self, target: int, op: Callable[[], Any],
                 kind: str = "one_sided", nbytes: int | None = None):
        self.target = target
        self.op = op
        self.kind = kind
        self.nbytes = nbytes


class BatchedOneSided(Effect):
    """Several one-sided verbs against one destination, fused if possible.

    Resumes with the list of the verbs' return values, in ``ops`` order.
    With :attr:`~repro.sim.network.NetworkConfig.doorbell_batching`
    enabled the runtime issues remote groups as a single fused round trip
    (``Network.one_sided_batch``); otherwise — and always for local
    targets — each verb is issued individually, reproducing the
    unbatched behaviour exactly.

    ``nbytes`` may be ``None`` (nominal verb size), one int applied to
    every verb, or a sequence of per-verb sizes matching ``ops``.
    """

    __slots__ = ("target", "ops", "kind", "nbytes")

    def __init__(self, target: int, ops: Iterable[Callable[[], Any]],
                 kind: str = "one_sided",
                 nbytes: int | Iterable[int] | None = None):
        self.target = target
        self.ops = tuple(ops)
        self.kind = kind
        self.nbytes = nbytes

    def per_verb_nbytes(self) -> list[int | None]:
        if self.nbytes is None or isinstance(self.nbytes, int):
            return [self.nbytes] * len(self.ops)
        sizes = list(self.nbytes)
        if len(sizes) != len(self.ops):
            raise ValueError(
                f"got {len(sizes)} sizes for {len(self.ops)} verbs")
        return sizes


class Rpc(Effect):
    """Send ``payload`` to server ``target``'s RPC handler, await reply."""

    __slots__ = ("target", "payload")

    def __init__(self, target: int, payload: Any):
        self.target = target
        self.payload = payload

    def describe(self) -> str:
        """Human label used by codec errors to name the effect."""
        kind = ""
        if (isinstance(self.payload, tuple) and self.payload
                and isinstance(self.payload[0], str)):
            kind = f"kind={self.payload[0]!r}, "
        return f"Rpc({kind}...) to server {self.target}"


class All(Effect):
    """Perform several effects concurrently; resume with list of results."""

    __slots__ = ("effects",)

    def __init__(self, effects: Iterable[Effect]):
        self.effects = tuple(effects)


class Sleep(Effect):
    """Suspend for ``delay`` microseconds without consuming CPU."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


class Signal:
    """A one-shot rendezvous: coroutines Await it, someone fires it.

    Used for out-of-band completions, e.g. the Chiller coordinator
    waiting for the inner host's replicas to acknowledge (the acks
    arrive as messages addressed to the coordinator, not as replies to
    any request the coordinator sent).
    """

    __slots__ = ("fired", "value", "_waiters")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)


class Await(Effect):
    """Suspend until ``signal`` fires; resumes with the fired value."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class OneWay:
    """Wrapper marking a message that expects no reply."""

    __slots__ = ("payload",)

    def __init__(self, payload: Any):
        self.payload = payload
