"""Shared-memory transport for the multiprocess backend.

The TCP transport pays a kernel round trip (syscall, loopback stack,
wakeup) per frame batch.  On one machine that is pure overhead — the
same Chiller observation that motivates the fast wire path: once the
network itself is fast, CPU-side cost per message dominates.  This
module moves worker-to-worker frames through ``multiprocessing``
shared memory instead:

* :class:`SpscRing` — a single-producer/single-consumer byte ring with
  length-prefixed frames.  The producer owns the ``tail`` cursor, the
  consumer owns ``head``; both are monotonically increasing 64-bit
  counters, so full/empty is ``tail - head`` with no ambiguity and no
  lock.  Cursors are published with aligned 8-byte writes *after* the
  frame bytes they cover (x86-TSO store ordering; CPython's buffer
  copies never reorder across the separate publish write).
* :class:`ShmWorkerTransport` — one ring per ordered (src_worker,
  dst_worker) pair.  Each worker *creates* its inbound rings before
  reporting to the parent, and advertises ``{src_worker: ring_name}``
  through the existing port-exchange handshake (the parent treats the
  advert as opaque).  Delivery is futex-free polling: a consumer task
  sweeps all inbound rings, spinning through the event loop while
  traffic flows and decaying to millisecond sleeps when quiet.

Frames are the same codec bodies the TCP transport ships (see
``FrameCodec``); only the carrier differs, so the two transports are
interchangeable per run via ``RunConfig(mp_transport=...)``.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from multiprocessing import shared_memory
from struct import Struct
from typing import Any

from .codec import FrameCodec

_S_CURSOR = Struct("<Q")
_S_LEN = Struct("<I")
_HEADER_BYTES = 16  # head @ 0, tail @ 8 (both 8-byte aligned)
_LEN_BYTES = _S_LEN.size

DEFAULT_RING_BYTES = 1 << 20
"""Data capacity of each ring (``RunConfig.mp_shm_ring_bytes``)."""

_SPIN_PASSES = 100
"""Empty poll sweeps before the consumer stops spinning through the
event loop and starts sleeping between sweeps.  Each empty sweep also
``sched_yield``\\ s: with spare cores that is a near-free syscall, but
when worker processes outnumber cores the producer only runs if the
spinning consumer gives up its timeslice — without the yield, polling
starves the very peer it is waiting on."""

_BACKOFF_MIN_S = 50e-6
_BACKOFF_MAX_S = 1e-3
_POP_BURST = 64
"""Frames popped per ring per sweep before yielding to the loop, so a
flood on one ring cannot starve tasks or the other rings."""


class RingFrameError(RuntimeError):
    """A frame can never fit the ring (raise ``mp_shm_ring_bytes``)."""


class SpscRing:
    """Lock-free byte ring over one shared-memory segment.

    Exactly one producer process and one consumer process.  Frames are
    ``<I`` length prefix + body, wrapping byte-wise at the capacity
    boundary (a frame may straddle the end; both halves are plain
    slice copies).
    """

    __slots__ = ("shm", "_buf", "capacity", "_created")

    def __init__(self, shm: shared_memory.SharedMemory, created: bool):
        self.shm = shm
        self._buf = shm.buf
        self.capacity = shm.size - _HEADER_BYTES
        self._created = created

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES,
               name: str | None = None) -> "SpscRing":
        """Create a fresh ring.  With ``name`` (the deterministic
        per-run scheme, see :func:`ring_name`) a stale same-named
        segment — leaked by a SIGKILL'd predecessor — is reclaimed
        first, so a respawned worker can always recreate its rings."""
        if capacity < 4 * _LEN_BYTES:
            raise ValueError(f"ring capacity {capacity} is too small")
        size = _HEADER_BYTES + capacity
        if name is None:
            shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            try:
                shm = shared_memory.SharedMemory(name=name, create=True,
                                                 size=size)
            except FileExistsError:
                cleanup_rings_by_name([name])
                shm = shared_memory.SharedMemory(name=name, create=True,
                                                 size=size)
        shm.buf[:_HEADER_BYTES] = bytes(_HEADER_BYTES)
        return cls(shm, created=True)

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        return cls(shared_memory.SharedMemory(name=name), created=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- cursors -----------------------------------------------------------

    def _head(self) -> int:
        return _S_CURSOR.unpack_from(self._buf, 0)[0]

    def _tail(self) -> int:
        return _S_CURSOR.unpack_from(self._buf, 8)[0]

    # -- data region (byte-wise wrap) --------------------------------------

    def _write(self, pos: int, data: bytes) -> None:
        cap = self.capacity
        off = _HEADER_BYTES + pos % cap
        end = off + len(data)
        top = _HEADER_BYTES + cap
        if end <= top:
            self._buf[off:end] = data
        else:
            first = top - off
            self._buf[off:top] = data[:first]
            self._buf[_HEADER_BYTES:_HEADER_BYTES + len(data) - first] = \
                data[first:]

    def _read(self, pos: int, n: int) -> bytes:
        cap = self.capacity
        off = _HEADER_BYTES + pos % cap
        end = off + n
        top = _HEADER_BYTES + cap
        if end <= top:
            return bytes(self._buf[off:end])
        first = top - off
        return bytes(self._buf[off:top]) + \
            bytes(self._buf[_HEADER_BYTES:_HEADER_BYTES + n - first])

    # -- producer ----------------------------------------------------------

    def try_push(self, body: bytes) -> bool:
        """Append one frame; False if the ring is currently full."""
        need = _LEN_BYTES + len(body)
        if need > self.capacity:
            raise RingFrameError(
                f"frame of {len(body)} bytes can never fit a "
                f"{self.capacity}-byte ring; raise "
                f"RunConfig.mp_shm_ring_bytes")
        tail = self._tail()
        if self.capacity - (tail - self._head()) < need:
            return False
        self._write(tail, _S_LEN.pack(len(body)))
        self._write(tail + _LEN_BYTES, body)
        _S_CURSOR.pack_into(self._buf, 8, tail + need)  # publish
        return True

    # -- consumer ----------------------------------------------------------

    def try_pop(self) -> bytes | None:
        """Remove and return the oldest frame, or None if empty."""
        head = self._head()
        if self._tail() == head:
            return None
        n = _S_LEN.unpack_from(self._read(head, _LEN_BYTES), 0)[0]
        body = self._read(head + _LEN_BYTES, n)
        _S_CURSOR.pack_into(self._buf, 0, head + _LEN_BYTES + n)  # publish
        return body

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._buf = None  # drop the memoryview before shm can release
        self.shm.close()

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass  # already reclaimed (parent cleanup raced us)


def ring_name(run_id: str, dst_worker: int, src_worker: int) -> str:
    """Deterministic segment name for ``dst``'s inbound ring from
    ``src``.  Derivable by the parent and by any worker generation, so
    a respawn recreates exactly its predecessor's names and tests can
    assert no ``repro-<run_id>-*`` segment outlives a run."""
    return f"repro-{run_id}-{dst_worker}-{src_worker}"


def ring_names(run_id: str, n_workers: int) -> list[str]:
    """Every ring name a run with this id can have created."""
    return [ring_name(run_id, dst, src)
            for dst in range(n_workers)
            for src in range(n_workers) if src != dst]


def create_inbound_rings(worker_id: int, n_workers: int, ring_bytes: int,
                         run_id: str | None = None) -> dict[int, SpscRing]:
    """This worker's receive rings, one per peer, keyed by sender."""
    return {src: SpscRing.create(
                ring_bytes,
                name=None if run_id is None
                else ring_name(run_id, worker_id, src))
            for src in range(n_workers) if src != worker_id}


def cleanup_rings_by_name(names) -> None:
    """Parent-side best effort: unlink rings a killed worker leaked."""
    for name in names:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        shm.close()
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


class ShmWorkerTransport:
    """Worker-pair frames over :class:`SpscRing` shared memory.

    Same surface as the TCP ``MpWorkerTransport`` — ``send`` returns
    the frame's wire size, ``idle()`` reflects frames accepted but not
    yet on the wire — so the serve loop and runtime are transport-
    agnostic.  A frame is "on the wire" once pushed into the peer's
    ring; frames that found the ring full wait in a per-peer overflow
    queue drained by a backoff task (``idle()`` stays False until the
    overflow is flushed).
    """

    def __init__(self, cluster: Any, rings_in: dict[int, SpscRing],
                 adverts: dict[int, Any], codec: FrameCodec):
        self._cluster = cluster
        self._codec = codec
        self._rings_in = rings_in
        # each peer advertised {src_worker: its-inbound-ring-name}; our
        # outbound ring toward dst is dst's inbound ring keyed by us
        me = cluster.worker_id
        self._out_names = {dst: advert[me] for dst, advert in adverts.items()
                           if dst != me}
        self._rings_out: dict[int, SpscRing] = {}
        self._down: set[int] = set()
        self._overflow: dict[int, deque] = {dst: deque()
                                            for dst in self._out_names}
        self._drainers: dict[int, asyncio.Task] = {}
        self._poller: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pending = 0
        self.frames_sent = 0
        self.wire_bytes_sent = 0

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        # every peer created its inbound rings before the parent shared
        # the advert map, so attaching here can never race creation —
        # unless the peer has *already died* and the parent reclaimed
        # its segments while we were still building
        for dst, name in self._out_names.items():
            try:
                self._rings_out[dst] = SpscRing.attach(name)
            except FileNotFoundError:
                if not getattr(self._cluster, "recovery_enabled", False):
                    raise
                # the parent's queued peer_down/rewire will resolve this
                self._down.add(dst)
        self._poller = loop.create_task(self._poll())

    # -- producer side -----------------------------------------------------

    def send(self, src: int, dst: int, wire: Any, what: str) -> int:
        if self._loop is None:
            raise RuntimeError("shm transport not started")
        body = self._codec.encode(src, dst, wire, what)
        dst_worker = self._cluster.owner_of(dst)
        if dst_worker == self._cluster.worker_id:
            raise RuntimeError(f"frame for owned server {dst} reached the "
                               f"transport (routing bug)")
        if dst_worker in self._down:
            return _LEN_BYTES + len(body)  # dropped: peer is dead
        overflow = self._overflow[dst_worker]
        if overflow or not self._rings_out[dst_worker].try_push(body):
            # FIFO: once anything queued, everything queues behind it
            overflow.append(body)
            self._pending += 1
            self._ensure_drainer(dst_worker)
        else:
            self.frames_sent += 1
            self.wire_bytes_sent += _LEN_BYTES + len(body)
        return _LEN_BYTES + len(body)

    def _ensure_drainer(self, dst_worker: int) -> None:
        task = self._drainers.get(dst_worker)
        if task is None or task.done():
            self._drainers[dst_worker] = self._loop.create_task(
                self._drain_overflow(dst_worker))

    async def _drain_overflow(self, dst_worker: int) -> None:
        overflow = self._overflow[dst_worker]
        ring = self._rings_out[dst_worker]
        backoff = _BACKOFF_MIN_S
        try:
            while overflow:
                if ring.try_push(overflow[0]):
                    body = overflow.popleft()
                    self._pending -= 1
                    self.frames_sent += 1
                    self.wire_bytes_sent += _LEN_BYTES + len(body)
                    backoff = _BACKOFF_MIN_S
                else:  # consumer is behind: wait for it to make room
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX_S)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._cluster._fatal(exc)

    # -- consumer side -----------------------------------------------------

    async def _poll(self) -> None:
        rings = list(self._rings_in.items())
        decode = self._codec.decode
        deliver = self._cluster._deliver_wire
        idle_sweeps = 0
        backoff = _BACKOFF_MIN_S
        try:
            while True:
                got = False
                for src_worker, ring in rings:
                    for _ in range(_POP_BURST):
                        body = ring.try_pop()
                        if body is None:
                            break
                        got = True
                        if not body:
                            # FrameCodec.encode always emits at least a tag
                            # byte, so an empty frame can only mean the ring
                            # cursors desynced; fail with the ring state
                            # rather than a bare decode error.
                            raise RuntimeError(
                                "shm ring %r popped an empty frame "
                                "(head=%d tail=%d): ring corruption" % (
                                    ring.name, ring._head(), ring._tail()))
                        src, dst, wire = decode(body)
                        deliver(dst, src, wire)
                if got:
                    idle_sweeps = 0
                    backoff = _BACKOFF_MIN_S
                    await asyncio.sleep(0)  # let delivered work run
                elif idle_sweeps < _SPIN_PASSES:
                    idle_sweeps += 1
                    os.sched_yield()
                    await asyncio.sleep(0)
                else:
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, _BACKOFF_MAX_S)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._cluster._fatal(exc)

    # -- quiescence & lifecycle --------------------------------------------

    def idle(self) -> bool:
        return self._pending == 0

    def fail_peer(self, dst_worker: int) -> None:
        """Detach from a dead worker: drop overflow frames bound for
        it, release the outbound ring mapping (the parent unlinks the
        segment), and discard whatever its last generation left in our
        inbound ring — stale verbs must not execute after the dead
        generation's locks are reaped."""
        self._down.add(dst_worker)
        task = self._drainers.pop(dst_worker, None)
        if task is not None:
            task.cancel()
        overflow = self._overflow.get(dst_worker)
        if overflow:
            self._pending -= len(overflow)
            overflow.clear()
        ring = self._rings_out.pop(dst_worker, None)
        if ring is not None:
            ring.close()
        ring_in = self._rings_in.get(dst_worker)
        if ring_in is not None:
            # the producer is dead, so one sweep empties it for good
            while ring_in.try_pop() is not None:
                pass

    def rewire(self, dst_worker: int, advert: dict) -> None:
        """Attach to a respawned worker's recreated inbound ring."""
        me = self._cluster.worker_id
        self._out_names[dst_worker] = advert[me]
        self._overflow.setdefault(dst_worker, deque())
        self._rings_out[dst_worker] = SpscRing.attach(advert[me])
        self._down.discard(dst_worker)

    async def stop(self) -> None:
        tasks = [t for t in (self._poller, *self._drainers.values())
                 if t is not None]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._drainers.clear()
        self._poller = None
        for ring in self._rings_out.values():
            ring.close()
        self._rings_out.clear()
        for ring in self._rings_in.values():
            ring.close()
            ring.unlink()  # we created our inbound rings
        self._rings_in.clear()
        self._loop = None
