"""Discrete-event simulation substrate (clock, CPU, network, coroutines).

This package stands in for the paper's physical testbed: an
InfiniBand-connected cluster running coroutine-based execution engines.
See DESIGN.md ("Substitutions") for the latency calibration rationale.
"""

from .cluster import Cluster, Server
from .coroutines import (All, Await, Compute, Coroutine, Effect, Engine,
                         OneSided, Rpc, Signal, Sleep)
from .cpu import Core
from .events import EventHandle, Simulator
from .network import Network, NetworkConfig, NetworkStats

__all__ = [
    "All",
    "Await",
    "Cluster",
    "Compute",
    "Core",
    "Coroutine",
    "Effect",
    "Engine",
    "EventHandle",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "OneSided",
    "Rpc",
    "Server",
    "Signal",
    "Simulator",
    "Sleep",
]
