"""Discrete-event simulation substrate (clock, CPU, network, coroutines).

This package stands in for the paper's physical testbed: an
InfiniBand-connected cluster running coroutine-based execution engines.
The layering inside: :mod:`~repro.sim.effects` defines *what* a
transaction coroutine may yield, :mod:`~repro.sim.runtime` defines *how*
those effects are scheduled (the :class:`EffectRuntime` seam alternate
backends plug into), and :mod:`~repro.sim.coroutines` wraps one runtime
per server as an :class:`Engine`.  See DESIGN.md ("Substitutions") for
the latency calibration rationale.
"""

from .aio_runtime import (AioCluster, AioEngine, AioNetwork, AioTransport,
                          AsyncioEffectRuntime, LoopbackTransport,
                          TcpTransport)
from .cluster import Cluster, Server
from .codec import (CodecError, DispatchContext, FrameCodec, OpDescriptor,
                    decode_op, encode_op, op_handler, register_wire_atom)
from .coroutines import Engine
from .cpu import Core
from .effects import (All, Await, BatchedOneSided, Compute, Coroutine,
                      Effect, OneSided, OneWay, Rpc, Signal, Sleep)
from .events import EventHandle, Simulator
from .mp_runtime import (MpRunError, MpRunSpec, MpTemplateCluster,
                         MpWorkerCluster, current_worker_cluster,
                         effective_mp_workers, run_mp_workers)
from .network import (Network, NetworkConfig, NetworkStats,
                      approx_payload_bytes, phase_of_kind)
from .runtime import EffectRuntime, EffectRuntimeBase
from .shm_transport import RingFrameError, ShmWorkerTransport, SpscRing

__all__ = [
    "AioCluster",
    "AioEngine",
    "AioNetwork",
    "AioTransport",
    "All",
    "AsyncioEffectRuntime",
    "Await",
    "BatchedOneSided",
    "Cluster",
    "CodecError",
    "Compute",
    "Core",
    "Coroutine",
    "DispatchContext",
    "Effect",
    "EffectRuntime",
    "EffectRuntimeBase",
    "Engine",
    "EventHandle",
    "FrameCodec",
    "LoopbackTransport",
    "MpRunError",
    "MpRunSpec",
    "MpTemplateCluster",
    "MpWorkerCluster",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "OneSided",
    "OneWay",
    "OpDescriptor",
    "RingFrameError",
    "Rpc",
    "Server",
    "ShmWorkerTransport",
    "Signal",
    "Simulator",
    "Sleep",
    "SpscRing",
    "TcpTransport",
    "approx_payload_bytes",
    "current_worker_cluster",
    "decode_op",
    "effective_mp_workers",
    "encode_op",
    "op_handler",
    "phase_of_kind",
    "register_wire_atom",
    "run_mp_workers",
]
