"""Wire codec: remote operations as *data*, not closures.

The simulated and asyncio backends could get away with shipping Python
closures between servers because every server lived in one process.  A
multiprocess backend cannot: anything that crosses a server boundary
must survive serialization.  This module is that boundary's vocabulary:

* :class:`OpDescriptor` — a picklable ``(kind, partition, table, key,
  args)`` description of one one-sided verb.  Descriptors are
  *callable*: in-process backends invoke them exactly like the closures
  they replaced (the descriptor carries a non-serialized binding to a
  :class:`DispatchContext`), while cross-process transports ship
  :meth:`OpDescriptor.spec` and re-bind at the receiving server.
* A **server-side dispatch table** (:data:`OP_HANDLERS`, populated via
  :func:`op_handler`): each verb kind maps to a handler executing
  against the target's storage.  The transaction layer registers its
  verbs (lock_read, commit, validate_*, replica_apply, ...) at import
  time, so any process that builds a database can serve any verb.
* **Wire message forms** (:class:`WireVerbs`, :class:`WireRpc`, ...):
  the picklable shapes one-sided verbs, RPC calls, and replication
  messages take on a real socket, with token-based reply routing
  replacing in-process continuation identity.

Layering: this module knows nothing about storage or transactions — it
owns the registry and the envelope shapes; the layers above register
handlers and choose what to put in ``args`` (which must be picklable).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from struct import Struct
from typing import Any, Callable, Sequence, Tuple


WIRE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
"""Pinned pickle protocol for every wire frame (codec ``dumps``, the
aio TCP framing, and the mp transport all use it).  Explicit pinning
keeps the hot path off pickle's compatibility default (protocol 4 era
framing) and makes the wire format an asserted property instead of an
interpreter accident — see the ROADMAP mp-wire-path note."""


class CodecError(TypeError):
    """A payload cannot cross a serialization boundary.

    Raised when an effect carries a raw closure (or otherwise
    unpicklable payload) toward a remote process; the message names the
    offending effect so the emitting layer is easy to find.
    """


class DispatchContext:
    """What a server-side verb handler may touch.

    One per database build: ``store_of(partition)`` resolves the local
    copy of a partition's primary store, ``replicas`` is the local
    :class:`~repro.replication.ReplicaManager` (or ``None``).  In-process
    backends share one context; each multiprocess worker builds its own
    from its deterministic copy of the database.

    The commit-durability layer adds three optional bindings, all
    opaque to this module: ``commits`` (the process's prepared-txn /
    decision table), ``wal_of(server_id)`` (per-server write-ahead log,
    or ``None`` when durability is off), and ``leases`` (the
    controller-election lease cells).
    """

    __slots__ = ("store_of", "replicas", "commits", "wal_of", "leases")

    def __init__(self, store_of: Callable[[int], Any],
                 replicas: Any = None, commits: Any = None,
                 wal_of: Callable[[int], Any] | None = None,
                 leases: Any = None):
        self.store_of = store_of
        self.replicas = replicas
        self.commits = commits
        self.wal_of = wal_of
        self.leases = leases


PEER_DOWN = ("peer_down",)
"""Result sentinel a runtime substitutes for a verb/RPC reply when the
destination worker is known dead.  Shaped like the status tuples verb
handlers return (``result[0]`` is the status string), so executor reply
loops can classify it without a type check."""


OP_HANDLERS: dict[str, Callable[[DispatchContext, "OpDescriptor"], Any]] = {}
"""The server-side dispatch table: verb kind -> handler."""


def op_handler(kind: str):
    """Register a server-side handler for descriptor kind ``kind``."""
    def register(fn):
        if kind in OP_HANDLERS:
            raise ValueError(f"op handler {kind!r} already registered")
        OP_HANDLERS[kind] = fn
        return fn
    return register


OpSpec = Tuple[str, int, Any, Any, tuple]
"""The picklable form of a descriptor: (kind, partition, table, key, args)."""


class OpDescriptor:
    """One remote operation as data.

    ``partition`` is the partition whose primary store the verb runs
    against (for most verbs this equals the target server; replica
    verbs address the hosting server and carry the replicated partition
    in ``args``).  ``args`` must be picklable.

    The ``_ctx`` binding is deliberately excluded from pickling: a
    descriptor arriving in another process is re-bound to *that*
    process's :class:`DispatchContext` before execution.
    """

    __slots__ = ("kind", "partition", "table", "key", "args", "_ctx",
                 "_handler")

    def __init__(self, kind: str, partition: int, table: str | None = None,
                 key: Any = None, args: tuple = ()):
        self.kind = kind
        self.partition = partition
        self.table = table
        self.key = key
        self.args = args
        self._ctx: DispatchContext | None = None
        self._handler: Callable | None = None

    def bind(self, ctx: DispatchContext | None) -> "OpDescriptor":
        self._ctx = ctx
        # pre-resolve the registry lookup so the (hot) __call__ path is
        # one attribute load instead of a dict probe per execution
        self._handler = None if ctx is None else OP_HANDLERS.get(self.kind)
        return self

    def spec(self) -> OpSpec:
        return (self.kind, self.partition, self.table, self.key, self.args)

    def __call__(self) -> Any:
        handler = self._handler
        if handler is not None:
            return handler(self._ctx, self)
        # slow path: unbound, or bound before the verb was registered
        if self._ctx is None:
            raise CodecError(
                f"descriptor {self!r} is unbound: bind() it to a "
                f"DispatchContext before executing")
        handler = OP_HANDLERS.get(self.kind)
        if handler is None:
            raise CodecError(
                f"no op handler registered for verb kind {self.kind!r} "
                f"(is the transaction layer imported in this process?)")
        self._handler = handler
        return handler(self._ctx, self)

    def __getstate__(self) -> OpSpec:
        return self.spec()

    def __setstate__(self, state: OpSpec) -> None:
        self.kind, self.partition, self.table, self.key, self.args = state
        self._ctx = None
        self._handler = None

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, OpDescriptor)
                and self.spec() == other.spec())

    def __hash__(self) -> int:
        return hash((self.kind, self.partition, self.table))

    def __repr__(self) -> str:
        return (f"OpDescriptor({self.kind!r}, p{self.partition}, "
                f"{self.table!r}, {self.key!r})")


def encode_op(op: Any, effect: str = "a one-sided effect") -> OpSpec:
    """The wire form of one verb; raises :class:`CodecError` for closures.

    ``effect`` names the emitting effect in the error so the layer still
    shipping a raw closure toward a remote process is easy to locate.
    """
    if isinstance(op, OpDescriptor):
        return op.spec()
    raise CodecError(
        f"{effect} carries a raw callable {op!r} which cannot cross a "
        f"process boundary; emit a sim.codec.OpDescriptor instead "
        f"(closures are only legal for local targets)")


def decode_op(spec: OpSpec) -> OpDescriptor:
    """Rebuild an (unbound) descriptor from its wire form."""
    kind, partition, table, key, args = spec
    return OpDescriptor(kind, partition, table, key, args)


def dumps(obj: Any, what: str) -> bytes:
    """Pickle ``obj`` (at :data:`WIRE_PICKLE_PROTOCOL`) or raise a
    :class:`CodecError` naming ``what``."""
    try:
        return pickle.dumps(obj, protocol=WIRE_PICKLE_PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise CodecError(f"{what} is not picklable and cannot cross a "
                         f"process boundary: {exc}") from exc


# -- wire message envelopes ---------------------------------------------------
#
# Token-based request/reply routing: the in-process runtimes route RPC
# replies by carrying the request object (and its continuation) inside
# the payload; across processes only the token travels, and each side
# keeps its own token -> continuation table.

@dataclass(frozen=True)
class WireVerbs:
    """A chain of one-sided verbs: run at the target, reply with values.

    ``batched=True`` marks a fused doorbell chain (the sender's
    continuation expects the list); a plain verb resumes with the single
    value.
    """

    token: int
    specs: tuple  # of OpSpec
    batched: bool
    trace: int = 0  # tracing context; 0 = untraced (the common case)


@dataclass(frozen=True)
class WireVerbReply:
    token: int
    values: tuple
    batched: bool


@dataclass(frozen=True)
class WireRpc:
    """An RPC request: spawn the target's handler, reply with its return."""

    token: int
    payload: Any
    trace: int = 0


@dataclass(frozen=True)
class WireRpcReply:
    token: int
    value: Any


@dataclass(frozen=True)
class WireOneWay:
    """A fire-and-forget message (no reply is routed back)."""

    payload: Any


# -- struct-packed hot-verb frames --------------------------------------------
#
# Profiles of the mp backend put pickle.dumps/loads of WireVerbs and
# WireVerbReply at the top of the wire path: every frame re-ships the
# dataclass scaffolding (class names, field names, verb-kind strings,
# table-name strings) that both ends already agree on.  The packed
# codec strips all of it.  A frame's first byte selects the format:
#
#   FRAME_PICKLE (0)        pickle of (src, dst, wire) — anything
#   FRAME_VERBS (1)         packed WireVerbs whose specs are all hot verbs
#   FRAME_VERB_REPLY (2)    packed WireVerbReply
#   FRAME_VERBS_TRACED (3)  FRAME_VERBS + an 8-byte trace id after the
#                           header; emitted only for traced requests, so
#                           tracing-off frames are byte-identical to
#                           before the field existed
#
# The packed formats never carry a string the peer can intern instead:
# verb kinds index :data:`HOT_VERBS`, table names index the per-run
# table registry (both workers build the database deterministically, so
# ``sorted(table names)`` is identical on every end — that sorted tuple
# *is* the negotiation), and interned constants like lock modes index
# :data:`WIRE_ATOMS` (registered at import time by the layers that own
# them, in deterministic import order).  Keys and args are packed by a
# small tagged-value encoder (ints, floats, strings, bytes, bools,
# None, flat tuples); anything else rides as an embedded pickle blob,
# and if even that fails the whole frame falls back to FRAME_PICKLE so
# :class:`CodecError` semantics are exactly those of the pickle path.

HOT_VERBS: tuple = ("lock_read", "plain_read", "commit", "release",
                    "prepare", "decision", "recover_query")
"""Verb kinds with a fixed packed encoding (index = wire verb id).
Extend only by appending: the index *is* the wire id, so reordering
breaks any mixed-version pairing."""

FRAME_PICKLE = 0
FRAME_VERBS = 1
FRAME_VERB_REPLY = 2
FRAME_VERBS_TRACED = 3

WIRE_ATOMS: list = []
"""Interned wire constants (e.g. lock modes): small hashable singletons
that would otherwise pickle as full class references.  Registered at
import time via :func:`register_wire_atom`; both ends of a connection
run the same deterministic imports, so index ``i`` means the same atom
everywhere."""


def register_wire_atom(atom: Any) -> Any:
    """Intern ``atom`` in the wire constant table (idempotent)."""
    hash(atom)  # must be hashable — the encoder looks atoms up by value
    if atom not in WIRE_ATOMS:
        WIRE_ATOMS.append(atom)
    return atom


class _Unpackable(Exception):
    """Internal: this wire object has no packed form — pickle the frame."""


# value tags for the key/args/reply encoder
_V_NONE, _V_FALSE, _V_TRUE, _V_INT, _V_FLOAT = 0, 1, 2, 3, 4
_V_STR, _V_BYTES, _V_BLOB, _V_ATOM, _V_TUPLE = 5, 6, 7, 8, 9

_S_HDR = Struct("<BHHqBH")    # frame tag, src, dst, token, batched, count
_S_SPEC = Struct("<BHB")      # verb id, partition, table id (0xFF = None)
_S_Q = Struct("<q")
_S_D = Struct("<d")
_S_I = Struct("<I")
_S_H = Struct("<H")
_S_B = Struct("<B")

_INT64_MIN, _INT64_MAX = -(2 ** 63), 2 ** 63 - 1


class FrameCodec:
    """Encodes/decodes one transport frame body (without length prefix).

    One per transport end.  ``tables`` is the run's interned table
    registry — the deterministically ordered table names both workers
    derived from their own database build.  ``packed=False`` keeps the
    decoder (frames from a packed peer still decode) but makes every
    *encoded* frame FRAME_PICKLE, which is the ``mp_codec="pickle"``
    escape hatch and the byte-accounting baseline.
    """

    __slots__ = ("tables", "packed", "_table_id", "_verb_id", "_atoms",
                 "_atom_id")

    def __init__(self, tables: Sequence[str] = (), packed: bool = True):
        self.tables = tuple(tables)
        self.packed = packed
        if len(self.tables) >= 0xFF:
            raise ValueError("table registry overflows the 1-byte wire id")
        self._table_id = {name: i for i, name in enumerate(self.tables)}
        self._verb_id = {kind: i for i, kind in enumerate(HOT_VERBS)}
        self._atoms = tuple(WIRE_ATOMS)
        self._atom_id = {atom: i for i, atom in enumerate(self._atoms)}

    # -- encode ------------------------------------------------------------

    def encode(self, src: int, dst: int, wire: Any, what: str) -> bytes:
        """The frame body for ``wire`` travelling ``src -> dst``.

        Falls back to the pickle frame for anything without a packed
        form; raises :class:`CodecError` (naming ``what``) only if the
        pickle fallback fails too — identical failure semantics to the
        pure-pickle path.
        """
        if self.packed:
            try:
                if type(wire) is WireVerbs:
                    return self._encode_verbs(src, dst, wire)
                if type(wire) is WireVerbReply:
                    return self._encode_reply(src, dst, wire)
            except _Unpackable:
                pass
        return b"\x00" + dumps((src, dst, wire), what)

    def _encode_verbs(self, src: int, dst: int, wire: WireVerbs) -> bytes:
        verb_id = self._verb_id
        table_id = self._table_id
        if wire.trace:
            out = [_S_HDR.pack(FRAME_VERBS_TRACED, src, dst, wire.token,
                               wire.batched, len(wire.specs)),
                   _S_Q.pack(wire.trace)]
        else:
            out = [_S_HDR.pack(FRAME_VERBS, src, dst, wire.token,
                               wire.batched, len(wire.specs))]
        for kind, partition, table, key, args in wire.specs:
            vid = verb_id.get(kind)
            if vid is None:
                raise _Unpackable
            tid = 0xFF if table is None else table_id.get(table)
            if tid is None:
                raise _Unpackable
            out.append(_S_SPEC.pack(vid, partition, tid))
            self._pack_value(out, key)
            self._pack_value(out, tuple(args))
        return b"".join(out)

    def _encode_reply(self, src: int, dst: int, wire: WireVerbReply) -> bytes:
        out = [_S_HDR.pack(FRAME_VERB_REPLY, src, dst, wire.token,
                           wire.batched, len(wire.values))]
        for value in wire.values:
            self._pack_value(out, value)
        return b"".join(out)

    def _pack_value(self, out: list, value: Any) -> None:
        kind = type(value)
        if kind is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                out.append(b"\x03" + _S_Q.pack(value))
            else:
                self._pack_blob(out, value)
        elif kind is str:
            raw = value.encode("utf-8")
            out.append(b"\x05" + _S_I.pack(len(raw)))
            out.append(raw)
        elif kind is tuple:
            if len(value) > 0xFFFF:
                raise _Unpackable
            out.append(b"\x09" + _S_H.pack(len(value)))
            for element in value:
                self._pack_value(out, element)
        elif value is None:
            out.append(b"\x00")
        elif kind is bool:
            out.append(b"\x02" if value else b"\x01")
        elif kind is float:
            out.append(b"\x04" + _S_D.pack(value))
        elif kind is bytes:
            out.append(b"\x06" + _S_I.pack(len(value)))
            out.append(value)
        else:
            try:
                atom = self._atom_id.get(value)
            except TypeError:  # unhashable — no atom can match
                atom = None
            if atom is not None:
                out.append(b"\x08" + _S_B.pack(atom))
            else:
                self._pack_blob(out, value)

    def _pack_blob(self, out: list, value: Any) -> None:
        try:
            raw = pickle.dumps(value, protocol=WIRE_PICKLE_PROTOCOL)
        except Exception:
            raise _Unpackable from None
        out.append(b"\x07" + _S_I.pack(len(raw)))
        out.append(raw)

    # -- decode ------------------------------------------------------------

    def decode(self, body: bytes) -> tuple:
        """``(src, dst, wire)`` from a frame body of either format."""
        tag = body[0]
        if tag == FRAME_PICKLE:
            return pickle.loads(body[1:])
        _tag, src, dst, token, batched, count = _S_HDR.unpack_from(body, 0)
        offset = _S_HDR.size
        if tag == FRAME_VERBS or tag == FRAME_VERBS_TRACED:
            trace = 0
            if tag == FRAME_VERBS_TRACED:
                trace = _S_Q.unpack_from(body, offset)[0]
                offset += _S_Q.size
            specs = []
            for _ in range(count):
                vid, partition, tid = _S_SPEC.unpack_from(body, offset)
                offset += _S_SPEC.size
                key, offset = self._unpack_value(body, offset)
                args, offset = self._unpack_value(body, offset)
                specs.append((HOT_VERBS[vid], partition,
                              None if tid == 0xFF else self.tables[tid],
                              key, args))
            return src, dst, WireVerbs(token, tuple(specs), bool(batched),
                                       trace)
        if tag == FRAME_VERB_REPLY:
            values = []
            for _ in range(count):
                value, offset = self._unpack_value(body, offset)
                values.append(value)
            return src, dst, WireVerbReply(token, tuple(values),
                                           bool(batched))
        raise CodecError(f"unknown wire frame tag {tag!r}")

    def _unpack_value(self, body: bytes, offset: int) -> tuple:
        tag = body[offset]
        offset += 1
        if tag == _V_INT:
            return _S_Q.unpack_from(body, offset)[0], offset + 8
        if tag == _V_STR:
            n = _S_I.unpack_from(body, offset)[0]
            offset += 4
            return body[offset:offset + n].decode("utf-8"), offset + n
        if tag == _V_TUPLE:
            n = _S_H.unpack_from(body, offset)[0]
            offset += 2
            elements = []
            for _ in range(n):
                element, offset = self._unpack_value(body, offset)
                elements.append(element)
            return tuple(elements), offset
        if tag == _V_NONE:
            return None, offset
        if tag == _V_FALSE:
            return False, offset
        if tag == _V_TRUE:
            return True, offset
        if tag == _V_FLOAT:
            return _S_D.unpack_from(body, offset)[0], offset + 8
        if tag == _V_BYTES:
            n = _S_I.unpack_from(body, offset)[0]
            offset += 4
            return bytes(body[offset:offset + n]), offset + n
        if tag == _V_BLOB:
            n = _S_I.unpack_from(body, offset)[0]
            offset += 4
            return pickle.loads(body[offset:offset + n]), offset + n
        if tag == _V_ATOM:
            return self._atoms[body[offset]], offset + 1
        raise CodecError(f"unknown wire value tag {tag!r}")


# -- record (WAL) bodies -------------------------------------------------------
#
# The write-ahead log reuses the tagged-value encoder for its record
# bodies: a record is a flat tuple of picklable values, packed exactly
# like a verb's key/args.  No table interning is involved — WAL files
# outlive any one run's table registry, so table names travel as plain
# strings — which is why these helpers can share one module-level codec
# regardless of which database wrote the record.

_record_codec: "FrameCodec | None" = None


def pack_record(record: tuple) -> bytes:
    """The byte body of one WAL record (a flat tuple of wire values)."""
    global _record_codec
    if _record_codec is None:
        _record_codec = FrameCodec()
    out: list = []
    _record_codec._pack_value(out, record)
    return b"".join(out)


def unpack_record(body: bytes) -> tuple:
    """Rebuild a WAL record tuple from :func:`pack_record` bytes."""
    global _record_codec
    if _record_codec is None:
        _record_codec = FrameCodec()
    value, _offset = _record_codec._unpack_value(body, 0)
    return value
