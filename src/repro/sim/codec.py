"""Wire codec: remote operations as *data*, not closures.

The simulated and asyncio backends could get away with shipping Python
closures between servers because every server lived in one process.  A
multiprocess backend cannot: anything that crosses a server boundary
must survive serialization.  This module is that boundary's vocabulary:

* :class:`OpDescriptor` — a picklable ``(kind, partition, table, key,
  args)`` description of one one-sided verb.  Descriptors are
  *callable*: in-process backends invoke them exactly like the closures
  they replaced (the descriptor carries a non-serialized binding to a
  :class:`DispatchContext`), while cross-process transports ship
  :meth:`OpDescriptor.spec` and re-bind at the receiving server.
* A **server-side dispatch table** (:data:`OP_HANDLERS`, populated via
  :func:`op_handler`): each verb kind maps to a handler executing
  against the target's storage.  The transaction layer registers its
  verbs (lock_read, commit, validate_*, replica_apply, ...) at import
  time, so any process that builds a database can serve any verb.
* **Wire message forms** (:class:`WireVerbs`, :class:`WireRpc`, ...):
  the picklable shapes one-sided verbs, RPC calls, and replication
  messages take on a real socket, with token-based reply routing
  replacing in-process continuation identity.

Layering: this module knows nothing about storage or transactions — it
owns the registry and the envelope shapes; the layers above register
handlers and choose what to put in ``args`` (which must be picklable).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Tuple


WIRE_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
"""Pinned pickle protocol for every wire frame (codec ``dumps``, the
aio TCP framing, and the mp transport all use it).  Explicit pinning
keeps the hot path off pickle's compatibility default (protocol 4 era
framing) and makes the wire format an asserted property instead of an
interpreter accident — see the ROADMAP mp-wire-path note."""


class CodecError(TypeError):
    """A payload cannot cross a serialization boundary.

    Raised when an effect carries a raw closure (or otherwise
    unpicklable payload) toward a remote process; the message names the
    offending effect so the emitting layer is easy to find.
    """


class DispatchContext:
    """What a server-side verb handler may touch.

    One per database build: ``store_of(partition)`` resolves the local
    copy of a partition's primary store, ``replicas`` is the local
    :class:`~repro.replication.ReplicaManager` (or ``None``).  In-process
    backends share one context; each multiprocess worker builds its own
    from its deterministic copy of the database.
    """

    __slots__ = ("store_of", "replicas")

    def __init__(self, store_of: Callable[[int], Any],
                 replicas: Any = None):
        self.store_of = store_of
        self.replicas = replicas


OP_HANDLERS: dict[str, Callable[[DispatchContext, "OpDescriptor"], Any]] = {}
"""The server-side dispatch table: verb kind -> handler."""


def op_handler(kind: str):
    """Register a server-side handler for descriptor kind ``kind``."""
    def register(fn):
        if kind in OP_HANDLERS:
            raise ValueError(f"op handler {kind!r} already registered")
        OP_HANDLERS[kind] = fn
        return fn
    return register


OpSpec = Tuple[str, int, Any, Any, tuple]
"""The picklable form of a descriptor: (kind, partition, table, key, args)."""


class OpDescriptor:
    """One remote operation as data.

    ``partition`` is the partition whose primary store the verb runs
    against (for most verbs this equals the target server; replica
    verbs address the hosting server and carry the replicated partition
    in ``args``).  ``args`` must be picklable.

    The ``_ctx`` binding is deliberately excluded from pickling: a
    descriptor arriving in another process is re-bound to *that*
    process's :class:`DispatchContext` before execution.
    """

    __slots__ = ("kind", "partition", "table", "key", "args", "_ctx")

    def __init__(self, kind: str, partition: int, table: str | None = None,
                 key: Any = None, args: tuple = ()):
        self.kind = kind
        self.partition = partition
        self.table = table
        self.key = key
        self.args = args
        self._ctx: DispatchContext | None = None

    def bind(self, ctx: DispatchContext | None) -> "OpDescriptor":
        self._ctx = ctx
        return self

    def spec(self) -> OpSpec:
        return (self.kind, self.partition, self.table, self.key, self.args)

    def __call__(self) -> Any:
        if self._ctx is None:
            raise CodecError(
                f"descriptor {self!r} is unbound: bind() it to a "
                f"DispatchContext before executing")
        handler = OP_HANDLERS.get(self.kind)
        if handler is None:
            raise CodecError(
                f"no op handler registered for verb kind {self.kind!r} "
                f"(is the transaction layer imported in this process?)")
        return handler(self._ctx, self)

    def __getstate__(self) -> OpSpec:
        return self.spec()

    def __setstate__(self, state: OpSpec) -> None:
        self.kind, self.partition, self.table, self.key, self.args = state
        self._ctx = None

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, OpDescriptor)
                and self.spec() == other.spec())

    def __hash__(self) -> int:
        return hash((self.kind, self.partition, self.table))

    def __repr__(self) -> str:
        return (f"OpDescriptor({self.kind!r}, p{self.partition}, "
                f"{self.table!r}, {self.key!r})")


def encode_op(op: Any, effect: str = "a one-sided effect") -> OpSpec:
    """The wire form of one verb; raises :class:`CodecError` for closures.

    ``effect`` names the emitting effect in the error so the layer still
    shipping a raw closure toward a remote process is easy to locate.
    """
    if isinstance(op, OpDescriptor):
        return op.spec()
    raise CodecError(
        f"{effect} carries a raw callable {op!r} which cannot cross a "
        f"process boundary; emit a sim.codec.OpDescriptor instead "
        f"(closures are only legal for local targets)")


def decode_op(spec: OpSpec) -> OpDescriptor:
    """Rebuild an (unbound) descriptor from its wire form."""
    kind, partition, table, key, args = spec
    return OpDescriptor(kind, partition, table, key, args)


def dumps(obj: Any, what: str) -> bytes:
    """Pickle ``obj`` (at :data:`WIRE_PICKLE_PROTOCOL`) or raise a
    :class:`CodecError` naming ``what``."""
    try:
        return pickle.dumps(obj, protocol=WIRE_PICKLE_PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise CodecError(f"{what} is not picklable and cannot cross a "
                         f"process boundary: {exc}") from exc


# -- wire message envelopes ---------------------------------------------------
#
# Token-based request/reply routing: the in-process runtimes route RPC
# replies by carrying the request object (and its continuation) inside
# the payload; across processes only the token travels, and each side
# keeps its own token -> continuation table.

@dataclass(frozen=True)
class WireVerbs:
    """A chain of one-sided verbs: run at the target, reply with values.

    ``batched=True`` marks a fused doorbell chain (the sender's
    continuation expects the list); a plain verb resumes with the single
    value.
    """

    token: int
    specs: tuple  # of OpSpec
    batched: bool


@dataclass(frozen=True)
class WireVerbReply:
    token: int
    values: tuple
    batched: bool


@dataclass(frozen=True)
class WireRpc:
    """An RPC request: spawn the target's handler, reply with its return."""

    token: int
    payload: Any


@dataclass(frozen=True)
class WireRpcReply:
    token: int
    value: Any


@dataclass(frozen=True)
class WireOneWay:
    """A fire-and-forget message (no reply is routed back)."""

    payload: Any
