"""Asyncio execution backend: the same effects over real event loops.

Where :class:`~repro.sim.runtime.EffectRuntime` interprets effects
against a discrete-event clock, :class:`AsyncioEffectRuntime` interprets
the identical vocabulary (``Compute``, ``OneSided``, ``BatchedOneSided``,
``Rpc``, ``All``, ``Await``, ``Sleep``) on an asyncio event loop in
*wall-clock* time.  An :class:`AioCluster` quacks exactly like
:class:`~repro.sim.cluster.Cluster` — same ``servers`` / ``engine()`` /
``network.stats`` / ``sim.now`` surface — so :class:`~repro.txn.database.
Database`, every executor, and the benchmark harness run unchanged on
either backend (``RunConfig(backend="aio")``).

Two transports move payloads between servers:

* :class:`LoopbackTransport` — in-loop delivery via ``call_soon``.
  Hermetic (no sockets), used by the tier-1 conformance suite.  FIFO is
  inherited from the loop's callback queue, which is strictly ordered.
* :class:`TcpTransport` — one real asyncio TCP connection per ordered
  (src, dst) server pair on localhost, carrying a length-prefixed pickle
  wire protocol.  FIFO per channel follows from TCP byte ordering plus a
  single writer/reader task pair per connection.

**Codec frames and the escrow fallback.**  Everything the wire codec
(:mod:`repro.sim.codec`) covers — one-sided verbs emitted as
:class:`~repro.sim.codec.OpDescriptor` data, verb replies, one-way
replication messages — is *really serialized*: the TCP transport
pickles the wire form into the frame and the receiving server re-binds
descriptors to its dispatch context, the same codec path the
multiprocess backend (:mod:`repro.sim.mp_runtime`) uses across real
process boundaries.  The in-process **escrow** stays only as a
documented fallback for genuinely local payloads: RPC request/reply
wrappers carry live continuations (meaningless outside this process),
and raw-closure verbs from effect-level tests never claim to be
shippable.  Escrow frames still cross the socket (length prefix +
pickled ``(src, token, padding)``) with the object riding an in-process
table keyed by token; either way frames are padded to the accounted
payload bytes, so real wire traffic tracks the traffic model.

What the backends guarantee:

========================  =======================  ======================
property                  sim backend              aio backend
========================  =======================  ======================
clock                     simulated microseconds   wall-clock microseconds
latency                   NetworkConfig constants  whatever the loop/stack
                                                   actually costs
(src, dst) FIFO           `_fifo_time` monotonic   loop callback order /
                                                   TCP stream order
one-sided target CPU      none (NIC model)         target's loop turn
determinism               bit-exact per seed       scheduling-dependent
========================  =======================  ======================
"""

from __future__ import annotations

import asyncio
import pickle
import time
from typing import Any, Callable, Sequence

from .cluster import Server
from .codec import (WIRE_PICKLE_PROTOCOL, OpDescriptor, WireOneWay,
                    WireVerbReply, WireVerbs, decode_op)
from .effects import Coroutine, OneWay
from .network import (MESSAGE_NOMINAL_BYTES, VERB_NOMINAL_BYTES,
                      NetworkConfig, NetworkStats, approx_payload_bytes)
from .runtime import EffectRuntimeBase

_LENGTH_BYTES = 8
"""Wire frames are ``len(body).to_bytes(8, 'big') + body``."""

_FRAME_OVERHEAD = 48
"""Approximate pickled size of an empty frame; padding tops frames up to
the accounted payload size beyond this."""


class AioClock:
    """Wall-clock microseconds since the cluster started running.

    Presents the slice of :class:`~repro.sim.events.Simulator` the
    database and harness layers read (``now``, ``events_fired``) so a
    :class:`AioCluster` can stand in for a simulated one.
    """

    def __init__(self) -> None:
        self._t0: float | None = None
        self.events_fired = 0

    def start(self, offset_us: float = 0.0) -> None:
        """(Re)zero the clock.  Called at every run start, so a reused
        cluster admits a full horizon again instead of inheriting the
        wall time that passed since the previous run.  ``offset_us``
        starts the clock mid-run: a restarted mp worker resumes at the
        fleet's elapsed time instead of re-admitting a full horizon."""
        self._t0 = time.perf_counter() - offset_us / 1e6

    @property
    def now(self) -> float:
        if self._t0 is None:
            return 0.0
        return (time.perf_counter() - self._t0) * 1e6


class AioNetwork:
    """Traffic model + accounting shared by every server's runtime.

    The transport moves payloads; this object holds the
    :class:`~repro.sim.network.NetworkConfig` knobs the executors read
    (doorbell batching, payload accounting) and the
    :class:`~repro.sim.network.NetworkStats` wire/local counters, kept
    to the same semantics as the simulated network so backend
    comparisons read one schema.
    """

    def __init__(self, config: NetworkConfig | None = None):
        self.config = config or NetworkConfig()
        self.stats = NetworkStats()


class AioTransport:
    """Moves a Python payload from server ``src`` to server ``dst``.

    Delivery must be FIFO per ordered (src, dst) pair and must invoke
    the destination's registered callback from the event loop (never
    reentrantly within ``send``).  Internal transport failures (socket
    errors, framing bugs) are reported through :attr:`on_error` so the
    owning cluster can abort the run instead of hanging on a frame that
    will never arrive.
    """

    on_error: Callable[[BaseException], None] | None = None

    def _fail(self, exc: BaseException) -> None:
        if self.on_error is not None:
            self.on_error(exc)
        else:
            raise exc

    def register(self, server_id: int,
                 deliver: Callable[[int, Any], None],
                 binder: Callable[[OpDescriptor], OpDescriptor] | None = None,
                 ) -> None:
        """Install ``server_id``'s delivery callback.

        ``binder`` re-binds op descriptors that arrived as codec frames
        to the receiving server's dispatch context; transports without a
        serialization boundary may ignore it.
        """
        raise NotImplementedError

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        raise NotImplementedError

    def send(self, src: int, dst: int, payload: Any, nbytes: int) -> None:
        raise NotImplementedError

    def idle(self) -> bool:
        """True when no accepted frame is still waiting to be delivered."""
        raise NotImplementedError

    async def stop(self) -> None:
        raise NotImplementedError


class LoopbackTransport(AioTransport):
    """In-loop delivery: ``call_soon`` is the wire.

    The event loop's callback queue is strictly FIFO, so this preserves
    per-channel ordering (indeed a stronger global order).  No sockets,
    no serialization — the hermetic transport the tier-1 suite uses.
    """

    def __init__(self) -> None:
        self._deliver: dict[int, Callable[[int, Any], None]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._in_flight = 0
        self.frames_sent = 0

    def register(self, server_id: int,
                 deliver: Callable[[int, Any], None],
                 binder: Callable[[OpDescriptor], OpDescriptor] | None = None,
                 ) -> None:
        # no serialization boundary: payloads (descriptors included)
        # arrive as the very objects that were sent, so no re-binding
        self._deliver[server_id] = deliver

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def send(self, src: int, dst: int, payload: Any, nbytes: int) -> None:
        if self._loop is None:
            raise RuntimeError("transport not started (is the cluster "
                               "running?)")
        deliver = self._deliver[dst]
        self.frames_sent += 1
        self._in_flight += 1

        def _arrive() -> None:
            self._in_flight -= 1
            deliver(src, payload)

        self._loop.call_soon(_arrive)

    def idle(self) -> bool:
        return self._in_flight == 0

    async def stop(self) -> None:
        self._in_flight = 0  # frames stranded by an aborted run
        self._loop = None


class _CloseChannel:
    """Sentinel asking a channel writer task to flush and exit."""


class TcpTransport(AioTransport):
    """Real asyncio TCP sockets on localhost, one per (src, dst) pair.

    Every server runs an ``asyncio.start_server`` acceptor on an
    ephemeral port; the first send on an ordered pair lazily opens that
    channel's connection, and a per-channel queue + writer task keeps
    sends FIFO even while the connection is still being established.
    Frames are length-prefixed pickles.  Codec-covered payloads (see
    module docstring) are pickled *into* the frame and decoded — with
    descriptors re-bound via the destination's ``binder`` — at the
    receiving server; everything else rides the escrow.  Frames are
    padded to the accounted size either way.
    """

    def __init__(self, host: str = "127.0.0.1"):
        self._host = host
        self._deliver: dict[int, Callable[[int, Any], None]] = {}
        self._binders: dict[int, Callable[[OpDescriptor], OpDescriptor]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._servers: dict[int, asyncio.AbstractServer] = {}
        self._ports: dict[int, int] = {}
        self._queues: dict[tuple[int, int], asyncio.Queue] = {}
        self._writers: dict[tuple[int, int], asyncio.Task] = {}
        self._escrow: dict[int, Any] = {}
        self._in_flight = 0
        self._next_token = 0
        self.frames_sent = 0
        self.codec_frames_sent = 0
        """Frames whose payload really serialized (no escrow entry)."""

        self.wire_bytes_sent = 0

    def register(self, server_id: int,
                 deliver: Callable[[int, Any], None],
                 binder: Callable[[OpDescriptor], OpDescriptor] | None = None,
                 ) -> None:
        self._deliver[server_id] = deliver
        if binder is not None:
            self._binders[server_id] = binder

    async def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        for server_id in self._deliver:
            server = await asyncio.start_server(
                lambda r, w, sid=server_id: self._serve(sid, r, w),
                self._host, 0)
            self._servers[server_id] = server
            self._ports[server_id] = server.sockets[0].getsockname()[1]

    # -- sending ---------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, nbytes: int) -> None:
        if self._loop is None:
            raise RuntimeError("transport not started (is the cluster "
                               "running?)")
        body = _codec_body(payload)
        if body is not None:
            item: tuple = (src, _MODE_CODEC, body)
            self.codec_frames_sent += 1
        else:
            token = self._next_token
            self._next_token += 1
            self._escrow[token] = payload
            item = (src, _MODE_ESCROW, token)
        self._in_flight += 1
        pad = b"\x00" * max(0, nbytes - _FRAME_OVERHEAD)
        channel = (src, dst)
        queue = self._queues.get(channel)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[channel] = queue
            self._writers[channel] = self._loop.create_task(
                self._write_channel(dst, queue))
        queue.put_nowait(item + (pad,))

    async def _write_channel(self, dst: int, queue: asyncio.Queue) -> None:
        writer = None
        try:
            reader, writer = await asyncio.open_connection(
                self._host, self._ports[dst])
            closing = False
            while not closing:
                items = [await queue.get()]
                # coalesce whatever queued while we awaited/drained into
                # one write: one syscall batch instead of one per frame
                while True:
                    try:
                        items.append(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                pieces = []
                for item in items:
                    if item is _CloseChannel:
                        closing = True
                        break
                    body = pickle.dumps(item, protocol=WIRE_PICKLE_PROTOCOL)
                    pieces.append(len(body).to_bytes(_LENGTH_BYTES, "big"))
                    pieces.append(body)
                if pieces:
                    batch = b"".join(pieces)
                    writer.write(batch)
                    self.frames_sent += len(pieces) // 2
                    self.wire_bytes_sent += len(batch)
                    await writer.drain()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # a dead writer strands every frame queued behind it; abort
            # the run instead of letting quiescence wait forever
            self._fail(exc)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    # -- receiving -------------------------------------------------------

    async def _serve(self, dst: int, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        deliver = self._deliver[dst]
        try:
            while True:
                header = await reader.readexactly(_LENGTH_BYTES)
                length = int.from_bytes(header, "big")
                body = await reader.readexactly(length)
                src, mode, value, _pad = pickle.loads(body)
                if mode == _MODE_CODEC:
                    payload = _payload_from_wire(pickle.loads(value),
                                                 self._binders.get(dst))
                else:
                    payload = self._escrow.pop(value)
                try:
                    deliver(src, payload)
                finally:
                    self._in_flight -= 1
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer closed the channel (normal at shutdown)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)  # framing/escrow corruption: abort the run
        finally:
            writer.close()

    def idle(self) -> bool:
        return (self._in_flight == 0
                and all(q.empty() for q in self._queues.values()))

    async def stop(self) -> None:
        for queue in self._queues.values():
            queue.put_nowait(_CloseChannel)
        if self._writers:
            await asyncio.gather(*self._writers.values(),
                                 return_exceptions=True)
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._queues.clear()
        self._writers.clear()
        self._escrow.clear()  # frames stranded by an aborted run
        self._in_flight = 0
        self._loop = None


# -- transport-level payloads -------------------------------------------------

class _VerbRequest:
    """One-sided verb chain: run ``ops`` at the target, reply with results.

    ``batched=True`` marks a fused doorbell chain (the continuation
    expects the list); a plain verb resumes with the single value.
    """

    __slots__ = ("token", "ops", "batched")

    def __init__(self, token: int, ops: tuple, batched: bool):
        self.token = token
        self.ops = ops
        self.batched = batched


class _VerbReply:
    __slots__ = ("token", "values", "batched")

    def __init__(self, token: int, values: list, batched: bool):
        self.token = token
        self.values = values
        self.batched = batched


# -- codec framing (shared wire forms from repro.sim.codec) -------------------

_MODE_ESCROW = 0
_MODE_CODEC = 1


def _payload_to_wire(payload: Any) -> Any:
    """The codec wire form of a transport payload, or None if only the
    escrow can carry it (RPC wrappers hold live continuations; verb
    requests may carry raw local closures)."""
    if isinstance(payload, _VerbRequest):
        if all(isinstance(op, OpDescriptor) for op in payload.ops):
            return WireVerbs(payload.token,
                             tuple(op.spec() for op in payload.ops),
                             payload.batched)
        return None
    if isinstance(payload, _VerbReply):
        return WireVerbReply(payload.token, tuple(payload.values),
                             payload.batched)
    if isinstance(payload, OneWay):
        return WireOneWay(payload.payload)
    return None


def _codec_body(payload: Any) -> bytes | None:
    """Really serialize ``payload`` if the codec covers it *and* its
    contents pickle; unpicklable contents (e.g. a verb reply carrying an
    arbitrary test object) fall back to the escrow — in one process
    that is always legal."""
    wire = _payload_to_wire(payload)
    if wire is None:
        return None
    try:
        return pickle.dumps(wire, protocol=WIRE_PICKLE_PROTOCOL)
    except Exception:
        return None


def _payload_from_wire(wire: Any, binder) -> Any:
    if isinstance(wire, WireVerbs):
        ops = tuple(decode_op(spec) for spec in wire.specs)
        if binder is not None:
            ops = tuple(binder(op) for op in ops)
        return _VerbRequest(wire.token, ops, wire.batched)
    if isinstance(wire, WireVerbReply):
        return _VerbReply(wire.token, list(wire.values), wire.batched)
    if isinstance(wire, WireOneWay):
        return OneWay(wire.payload)
    raise TypeError(f"unexpected codec wire payload {wire!r}")


class AsyncioEffectRuntime(EffectRuntimeBase):
    """Interprets the effect vocabulary on an asyncio event loop.

    ``Compute`` yields the loop (cost is *recorded*, not slept — the aio
    backend measures what the hardware actually does instead of modeling
    it); ``Sleep`` maps to ``call_later``; verbs and messages cross the
    cluster's transport and execute in the target server's loop turn,
    the socket-world analogue of a one-sided NIC access.  All effect
    *semantics* — fan-in, batching grouping, RPC plumbing — come from
    :class:`~repro.sim.runtime.EffectRuntimeBase`, so both backends
    cannot disagree on what an effect means.
    """

    __slots__ = ("_cluster", "network", "cpu_us", "_pending", "_next_token")

    def __init__(self, cluster: "AioCluster", server_id: int):
        super().__init__(server_id)
        self._cluster = cluster
        self.network = cluster.network
        self.cpu_us = 0.0
        """Accumulated Compute cost (recorded, not slept)."""

        self._pending: dict[int, tuple[Callable, bool]] = {}
        self._next_token = 0

    # -- base-class hooks -------------------------------------------------

    def _task_started(self) -> None:
        self._cluster._task_started()

    def _task_finished(self) -> None:
        self._cluster._task_finished()

    def perform(self, effect, cont) -> None:
        self._cluster.clock.events_fired += 1
        super().perform(effect, cont)

    def _batching_enabled(self) -> bool:
        return self.network.config.doorbell_batching

    def _defer(self, fn: Callable[[], None]) -> None:
        self._cluster.loop.call_soon(fn)

    def _do_compute(self, cost: float,
                    cont: Callable[[Any], None]) -> None:
        self.cpu_us += cost
        self._cluster.loop.call_soon(cont, None)

    def _do_sleep(self, delay: float,
                  cont: Callable[[Any], None]) -> None:
        if delay <= 0.0:
            self._cluster.loop.call_soon(cont, None)
            return
        self._cluster.loop.call_later(delay * 1e-6, cont, None)

    # -- verbs ------------------------------------------------------------

    def _one_sided(self, target: int, op: Callable[[], Any],
                   cont: Callable[[Any], None],
                   kind: str, nbytes: int | None) -> None:
        remote = target != self.server_id
        self.network.stats.record_one_sided(kind, nbytes, remote=remote,
                                            server=self.server_id)
        if not remote:
            self._cluster.loop.call_soon(lambda: cont(op()))
            return
        self._dispatch_verbs(
            target, (op,), cont, batched=False,
            nbytes=VERB_NOMINAL_BYTES if nbytes is None else nbytes)

    def _one_sided_batch(self, target: int,
                         ops: Sequence[Callable[[], Any]],
                         cont: Callable[[list], None],
                         kinds: list[tuple[str, int | None]]) -> None:
        total = self.network.stats.record_batch(kinds,
                                                server=self.server_id)
        self._dispatch_verbs(target, tuple(ops), cont, batched=True,
                             nbytes=total)

    def _dispatch_verbs(self, target: int, ops: tuple,
                        cont: Callable, batched: bool,
                        nbytes: int) -> None:
        token = self._next_token
        self._next_token += 1
        self._pending[token] = (cont, batched)
        self._cluster.transport.send(
            self.server_id, target, _VerbRequest(token, ops, batched),
            nbytes)

    # -- messages ---------------------------------------------------------

    def send_payload(self, target: int, payload: Any,
                     kind: str, size_of: Any) -> None:
        if self.network.config.account_payload_bytes:
            nbytes = approx_payload_bytes(size_of)
        else:
            nbytes = MESSAGE_NOMINAL_BYTES
        self.network.stats.record_message(kind, nbytes,
                                          remote=target != self.server_id,
                                          server=self.server_id)
        self._cluster.transport.send(self.server_id, target, payload,
                                     nbytes)

    def on_transport(self, src: int, payload: Any) -> None:
        """Transport delivery entry point for this server."""
        if isinstance(payload, _VerbRequest):
            values = [op() for op in payload.ops]
            self._cluster.transport.send(
                self.server_id, src,
                _VerbReply(payload.token, values, payload.batched),
                VERB_NOMINAL_BYTES)
            return
        if isinstance(payload, _VerbReply):
            cont, batched = self._pending.pop(payload.token)
            cont(payload.values if batched else payload.values[0])
            return
        self.on_message(src, payload)


def _runtime_binder(runtime: "AsyncioEffectRuntime"):
    """Re-bind descriptors decoded from codec frames to the receiving
    server's dispatch context (installed by the database layer)."""
    def bind(op: OpDescriptor) -> OpDescriptor:
        return op.bind(runtime.dispatch_context)
    return bind


class AioEngine:
    """Per-server facade over one :class:`AsyncioEffectRuntime`.

    Mirrors :class:`~repro.sim.coroutines.Engine`'s surface (``spawn``,
    ``post``, ``set_rpc_handler``, ``active_tasks``) so the database
    layer wires RPC dispatch identically on both backends.
    """

    def __init__(self, cluster: "AioCluster", server_id: int):
        self.server_id = server_id
        self._cluster = cluster
        self.runtime = AsyncioEffectRuntime(cluster, server_id)

    @property
    def active_tasks(self) -> int:
        return self.runtime.active_tasks

    def set_rpc_handler(self,
                        handler: Callable[[int, Any], Coroutine]) -> None:
        self.runtime.rpc_handler = handler

    def spawn(self, gen: Coroutine,
              on_done: Callable[[Any], None] | None = None) -> None:
        self._cluster._spawn(self.runtime, gen, on_done)

    def post(self, target: int, payload: Any) -> None:
        self.runtime.post(target, payload)


class AioCluster:
    """N asyncio servers sharing one loop, one transport, one clock.

    Drop-in for :class:`~repro.sim.cluster.Cluster`: ``servers`` /
    ``server()`` / ``engine()`` / ``network`` / ``sim`` present the same
    surface, with ``sim.now`` reading wall-clock microseconds.  Spawns
    before :meth:`run` are buffered and released once the loop and
    transport are up; :meth:`run` returns when every spawned coroutine
    (and everything they spawned, RPC handlers included) has finished
    and the transport has no frame in flight.
    """

    def __init__(self, n_servers: int,
                 config: NetworkConfig | None = None,
                 transport: AioTransport | str = "loopback",
                 run_timeout_s: float | None = 120.0):
        if n_servers <= 0:
            raise ValueError("cluster needs at least one server")
        self.clock = AioClock()
        self.sim = self.clock  # Database/harness read .sim.now
        self.network = AioNetwork(config)
        if isinstance(transport, str):
            if transport == "loopback":
                transport = LoopbackTransport()
            elif transport == "tcp":
                transport = TcpTransport()
            else:
                raise ValueError(f"unknown aio transport {transport!r}")
        self.transport = transport
        self.run_timeout_s = run_timeout_s
        self.on_tick: Callable[[], Any] | None = None
        """Observer called every ``tick_interval_s`` of wall clock
        while the loop runs (the metrics timeline sampler installs
        itself here).  An exception from it is fatal to the run, so a
        health watchdog abort propagates out of :meth:`run`."""
        self.tick_interval_s: float | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._pending_spawns: list[tuple] = []
        self._active = 0
        self._idle: asyncio.Event | None = None
        self._error: BaseException | None = None
        self.transport.on_error = self._fatal
        self.servers = [Server(i, AioEngine(self, i))
                        for i in range(n_servers)]
        for server in self.servers:
            runtime = server.engine.runtime
            self.transport.register(
                server.id,
                self._guarded(runtime.on_transport),
                binder=_runtime_binder(runtime))

    def __len__(self) -> int:
        return len(self.servers)

    def server(self, server_id: int) -> Server:
        return self.servers[server_id]

    def engine(self, server_id: int) -> AioEngine:
        return self.servers[server_id].engine

    # -- task latch --------------------------------------------------------

    def _spawn(self, runtime: AsyncioEffectRuntime, gen: Coroutine,
               on_done: Callable[[Any], None] | None) -> None:
        if self.loop is None:
            self._pending_spawns.append((runtime, gen, on_done))
        else:
            runtime.spawn(gen, on_done)

    def _task_started(self) -> None:
        self._active += 1
        if self._idle is not None:
            self._idle.clear()

    def _task_finished(self) -> None:
        self._active -= 1
        if self._active == 0 and self._idle is not None:
            self._idle.set()

    # -- failure propagation ------------------------------------------------

    def _guarded(self, deliver: Callable[[int, Any], None],
                 ) -> Callable[[int, Any], None]:
        """Route delivery-time exceptions (a verb op raising at the
        target, a task stepping onto a bug) into :meth:`_fatal` so they
        abort the run like the simulator's do, instead of being
        swallowed by the loop or killing a transport reader task."""
        def guarded(src: int, payload: Any) -> None:
            try:
                deliver(src, payload)
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                self._fatal(exc)
        return guarded

    def _fatal(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        if self._idle is not None:
            self._idle.set()  # wake _drain so run() can re-raise

    # -- driving -----------------------------------------------------------

    def run(self, max_events: int | None = None) -> None:
        """Run the event loop until all spawned work completes.

        ``max_events`` exists for signature compatibility with the
        simulated cluster and is not supported here.
        """
        if max_events is not None:
            raise ValueError("max_events is a simulator concept; the "
                             "asyncio backend runs to completion")
        asyncio.run(self._main())

    def run_until_complete(self) -> None:
        self.run()

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._error = None
        # a previous aborted run may have left tasks that can never
        # finish (their continuations died with that run's loop); the
        # latch tracks only this run's work
        self._active = 0
        # callback exceptions (Compute/Sleep continuations stepping onto
        # a bug) land in the loop's handler; treat them as fatal too
        self.loop.set_exception_handler(self._loop_exception)
        tick_handle: asyncio.TimerHandle | None = None
        try:
            await self.transport.start(self.loop)
            self.clock.start()
            if self.on_tick is not None and self.tick_interval_s:
                def _tick() -> None:
                    nonlocal tick_handle
                    try:
                        self.on_tick()
                    except BaseException as exc:  # noqa: BLE001
                        self._fatal(exc)
                        return
                    tick_handle = self.loop.call_later(
                        self.tick_interval_s, _tick)
                tick_handle = self.loop.call_later(
                    self.tick_interval_s, _tick)
            pending, self._pending_spawns = self._pending_spawns, []
            for runtime, gen, on_done in pending:
                runtime.spawn(gen, on_done)
            if self._active == 0:
                self._idle.set()
            if self.run_timeout_s is None:
                await self._drain()
            else:
                await asyncio.wait_for(self._drain(), self.run_timeout_s)
        finally:
            if tick_handle is not None:
                tick_handle.cancel()
            await self.transport.stop()
            self.loop = None
            self._idle = None
        if self._error is not None:
            raise self._error

    def _loop_exception(self, loop: asyncio.AbstractEventLoop,
                        context: dict) -> None:
        self._fatal(context.get("exception")
                    or RuntimeError(context.get("message",
                                                "event loop error")))

    async def _drain(self) -> None:
        """Wait until no task is active and no frame is in flight.

        The latch can transiently read zero while a fire-and-forget
        message is crossing the transport (its handler task has not
        spawned yet), so quiescence requires the transport idle *and*
        the latch still zero after yielding to pending deliveries.  A
        recorded fatal error ends the drain immediately; :meth:`_main`
        re-raises it.
        """
        while True:
            await self._idle.wait()
            if self._error is not None:
                return
            settled = True
            for _ in range(4):
                await asyncio.sleep(0)
                if self._active or self._error is not None:
                    settled = False
                    break
            if not settled:
                if self._error is not None:
                    return
                continue
            if not self.transport.idle():
                await asyncio.sleep(0.001)
                continue
            if self._active == 0:
                return
