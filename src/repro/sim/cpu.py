"""A simulated CPU core with FIFO service and utilization accounting.

The paper pins one execution engine per hardware thread; throughput
saturates when that core is fully busy (Fig. 9a flattens at 4 concurrent
transactions per warehouse).  Modeling the core as a FIFO server whose
busy time accumulates lets that saturation emerge rather than be scripted.
"""

from __future__ import annotations

from typing import Any, Callable

from .events import Simulator


class Core:
    """One simulated core.  Work items run back-to-back in FIFO order."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._busy_until = 0.0
        self._busy_time = 0.0

    @property
    def busy_time(self) -> float:
        """Total microseconds of CPU consumed so far."""
        return self._busy_time

    @property
    def busy_until(self) -> float:
        """Simulated time at which all queued work will have finished."""
        return max(self._busy_until, self._sim.now)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall (simulated) time this core was busy."""
        elapsed = self._sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)

    def execute(self, cost: float, fn: Callable[[], Any]) -> float:
        """Queue ``cost`` microseconds of work, then run ``fn``.

        Returns the simulated completion time.  Zero-cost work still queues
        behind in-flight work (it needs the CPU, however briefly).
        """
        if cost < 0:
            raise ValueError(f"negative CPU cost {cost}")
        start = max(self._busy_until, self._sim.now)
        finish = start + cost
        self._busy_until = finish
        self._busy_time += cost
        self._sim.schedule_at(finish, fn)
        return finish
