"""Traditional distributed 2PL (NO_WAIT) with two-phase commit.

The baseline of the paper's Fig. 3a: the coordinator acquires locks and
reads during the execution phase (in dependency layers, one parallel
network round per layer), piggybacks the prepare onto the last execution
step (possible because NO_WAIT means every participant already holds all
its locks — nothing non-deterministic is left to veto), replicates the
write-set, then commits and releases in one final round.  The contention
span of *every* record is therefore at least two message delays,
regardless of how hot it is — which is precisely what Chiller attacks.
"""

from __future__ import annotations

from typing import Generator

from .commit_fsm import CommitFsm
from .common import Outcome, TxnRequest
from .executor import BaseExecutor


class TwoPLExecutor(BaseExecutor):
    """Distributed 2PL NO_WAIT + 2PC coordinator."""

    name = "2pl"

    def execute(self, request: TxnRequest, trace: int = 0,
                attempt: int = 0) -> Generator:
        state = self.new_state(request, trace, attempt)
        fsm = CommitFsm(self, state)
        ok = yield from self.lock_read_phase(state)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)
        writes = self.evaluate_writes(state)
        ok = yield from fsm.prepare(writes)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)
        yield from fsm.commit()
        return self.finish(state)
