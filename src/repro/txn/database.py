"""Database composition: cluster + storage + catalog + procedures.

One partition per server (as in the paper's evaluation: each execution
engine owns one partition/warehouse).  The database wires partition
stores into the simulated servers, creates replicas, installs the RPC
dispatcher, and offers the record-loading path that keeps primary and
replica copies consistent at start-up.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..analysis import ProcedureRegistry
from ..replication import ReplicaManager
from ..sim import Cluster, Coroutine
from ..sim.codec import DispatchContext
from ..storage import Catalog, PartitionStore, TableSpec


RpcFactory = Callable[[int, int, Any], Coroutine]
"""(server_id, src_server, body) -> handler coroutine returning the reply."""


class Database:
    """A distributed in-memory database over a simulated cluster."""

    def __init__(self, cluster: Cluster, catalog: Catalog,
                 tables: Iterable[TableSpec],
                 registry: ProcedureRegistry,
                 n_replicas: int = 1,
                 track_spans: bool = False):
        if catalog.n_partitions != len(cluster):
            raise ValueError(
                f"catalog has {catalog.n_partitions} partitions but the "
                f"cluster has {len(cluster)} servers (1:1 expected)")
        self.cluster = cluster
        self.catalog = catalog
        self.registry = registry
        self.tables = list(tables)
        now_fn = lambda: cluster.sim.now  # noqa: E731 - tiny closure
        for server in cluster.servers:
            server.storage = PartitionStore(server.id, self.tables,
                                            now_fn=now_fn,
                                            track_spans=track_spans)
        self.replicas: ReplicaManager | None = None
        if n_replicas > 0:
            self.replicas = ReplicaManager(len(cluster), n_replicas,
                                           self.tables, now_fn=now_fn)
        self.dispatch_context = DispatchContext(self.store, self.replicas)
        """What this process's servers expose to decoded op descriptors
        (see :mod:`repro.sim.codec`): the local stores and replicas."""
        self._rpc_kinds: dict[str, RpcFactory] = {}
        for server in cluster.servers:
            server.engine.set_rpc_handler(self._dispatcher(server.id))
            runtime = getattr(server.engine, "runtime", None)
            if runtime is not None:
                # lets transports re-bind descriptors that arrived over
                # a real serialization boundary to this database
                runtime.dispatch_context = self.dispatch_context

    # -- placement ---------------------------------------------------------

    def partition_of(self, table: str, key: Any,
                     reader: int | None = None) -> int:
        return self.catalog.partition_of(table, key, reader)

    def store(self, partition: int) -> PartitionStore:
        """Primary store of ``partition``."""
        return self.cluster.server(partition).storage

    @property
    def n_partitions(self) -> int:
        return self.catalog.n_partitions

    # -- loading ------------------------------------------------------------

    def load(self, table: str, key: Any, fields: dict[str, Any]) -> None:
        """Load one record into its primary partition and all replicas.

        Records of replicated tables are copied to every partition.
        """
        if table in self.catalog.replicated_tables:
            for partition in range(self.n_partitions):
                self.store(partition).load(table, key, fields)
            return
        partition = self.partition_of(table, key)
        self.store(partition).load(table, key, fields)
        if self.replicas is not None:
            self.replicas.load(partition, table, key, fields)

    def loader(self) -> Callable[[str, Any, dict[str, Any]], None]:
        """A ``load(table, key, fields)`` callable for workload populate
        functions."""
        return self.load

    # -- RPC dispatch --------------------------------------------------------

    def register_rpc(self, kind: str, factory: RpcFactory) -> None:
        """Register a handler-coroutine factory for message kind ``kind``."""
        if kind in self._rpc_kinds:
            raise ValueError(f"RPC kind {kind!r} already registered")
        self._rpc_kinds[kind] = factory

    def _dispatcher(self, server_id: int):
        def handle(src: int, request: Any) -> Coroutine:
            kind, body = request
            factory = self._rpc_kinds.get(kind)
            if factory is None:
                raise KeyError(f"no RPC handler for kind {kind!r}")
            return factory(server_id, src, body)
        return handle
