"""Database composition: cluster + storage + catalog + procedures.

One partition per server (as in the paper's evaluation: each execution
engine owns one partition/warehouse).  The database wires partition
stores into the simulated servers, creates replicas, installs the RPC
dispatcher, and offers the record-loading path that keeps primary and
replica copies consistent at start-up.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..analysis import ProcedureRegistry
from ..obs.tracer import NOOP_TRACER
from ..replication import ReplicaManager
from ..sim import Cluster, Coroutine
from ..sim.codec import DispatchContext
from ..storage import (Catalog, PartitionStore, RecoveryStats, TableSpec,
                       WalSpec, WriteAheadLog, as_wal_spec, wal_path)
from .commit_fsm import CommitTable
from .common import TXN_ID_NAMESPACE_SPAN


RpcFactory = Callable[[int, int, Any], Coroutine]
"""(server_id, src_server, body) -> handler coroutine returning the reply."""


class Database:
    """A distributed in-memory database over a simulated cluster."""

    tracer = NOOP_TRACER
    """Span sink for the observability layer (:mod:`repro.obs`).  A
    class attribute so every database is born with the zero-cost no-op;
    the harness overwrites it (per instance) when a run asks for
    ``trace=True``."""

    def __init__(self, cluster: Cluster, catalog: Catalog,
                 tables: Iterable[TableSpec],
                 registry: ProcedureRegistry,
                 n_replicas: int = 1,
                 track_spans: bool = False,
                 wal: WalSpec | str | None = None):
        if catalog.n_partitions != len(cluster):
            raise ValueError(
                f"catalog has {catalog.n_partitions} partitions but the "
                f"cluster has {len(cluster)} servers (1:1 expected)")
        self.cluster = cluster
        self.catalog = catalog
        self.registry = registry
        self.tables = list(tables)
        self._owns = getattr(cluster, "owns", None)
        """Worker-ownership predicate (multiprocess workers only).
        When set, the load path prunes foreign-partition records the
        worker would never touch — see :meth:`load`."""
        now_fn = lambda: cluster.sim.now  # noqa: E731 - tiny closure
        for server in cluster.servers:
            server.storage = PartitionStore(server.id, self.tables,
                                            now_fn=now_fn,
                                            track_spans=track_spans)
        self.replicas: ReplicaManager | None = None
        if n_replicas > 0:
            self.replicas = ReplicaManager(len(cluster), n_replicas,
                                           self.tables, now_fn=now_fn)
        self.recovery = RecoveryStats()
        self.commit_table = CommitTable()
        self.wal_spec = as_wal_spec(wal)
        self._wals: dict[int, WriteAheadLog] = {}
        if self.wal_spec.enabled:
            if self.wal_spec.dir is None:
                raise ValueError("a durability-enabled WalSpec needs a "
                                 "directory (the harness assigns one "
                                 "per run)")
            for server in cluster.servers:
                if self._owns is None or self._owns(server.id):
                    self._wals[server.id] = WriteAheadLog(
                        wal_path(self.wal_spec.dir, server.id),
                        self.wal_spec, stats=self.recovery)
        self.leases: dict[int, Any] = {}
        """Controller-election lease cells, keyed by server id; filled
        lazily by the ``lease_acquire`` verb handler."""
        self.dispatch_context = DispatchContext(self.store, self.replicas,
                                                commits=self.commit_table,
                                                wal_of=self.wal_of,
                                                leases=self.leases)
        """What this process's servers expose to decoded op descriptors
        (see :mod:`repro.sim.codec`): the local stores, replicas, and
        the durability layer's tables."""
        hooks = getattr(cluster, "peer_down_hooks", None)
        if hooks is not None:
            hooks.append(self._release_dead_owner_locks)
        register_tables = getattr(cluster, "register_wire_tables", None)
        if register_tables is not None:
            # the packed wire codec interns table names; every worker
            # derives the same sorted list from its own identical build
            register_tables(sorted(spec.name for spec in self.tables))
        self._rpc_kinds: dict[str, RpcFactory] = {}
        for server in cluster.servers:
            server.engine.set_rpc_handler(self._dispatcher(server.id))
            runtime = getattr(server.engine, "runtime", None)
            if runtime is not None:
                # lets transports re-bind descriptors that arrived over
                # a real serialization boundary to this database
                runtime.dispatch_context = self.dispatch_context

    # -- placement ---------------------------------------------------------

    def partition_of(self, table: str, key: Any,
                     reader: int | None = None) -> int:
        return self.catalog.partition_of(table, key, reader)

    def placement_epoch(self) -> int:
        """Current placement epoch (0 under any static scheme).

        Epochs advance only when live migrations flip entries of an
        epoch-versioned catalog scheme (see
        :class:`~repro.core.lookup.EpochLookupScheme`); transactions
        capture this at start so a later read miss can be classified.
        """
        return getattr(self.catalog.scheme, "current_epoch", 0)

    def moved_since(self, table: str, key: Any, epoch: int) -> bool:
        """Did ``(table, key)`` migrate after placement epoch ``epoch``?

        Always False under a static scheme — the miss really is a
        missing record.
        """
        moved = getattr(self.catalog.scheme, "moved_since", None)
        return moved is not None and moved(table, key, epoch)

    def store(self, partition: int) -> PartitionStore:
        """Primary store of ``partition``."""
        return self.cluster.server(partition).storage

    # -- durability --------------------------------------------------------

    def wal_of(self, server_id: int) -> WriteAheadLog | None:
        """The server's write-ahead log; None when durability is off
        (or the server belongs to another worker process)."""
        return self._wals.get(server_id)

    def wal_servers(self) -> list[int]:
        """Server ids this process keeps logs for."""
        return list(self._wals)

    def close_wals(self) -> None:
        for wal in self._wals.values():
            wal.close()

    def _release_dead_owner_locks(self, worker: int,
                                  dead_gen: int | None = None) -> None:
        """Reap locks stranded by a dead worker's transactions.

        A crashed worker's coordinators never come back under the same
        txn-id namespace (its replacement seeds a fresh generation), so
        their locks on surviving servers would leak forever.  Prepared
        in-doubt txns are exempt: their locks are part of the 2PC
        contract and are released only when the decision is known.
        Bounded by ``dead_gen``: the worker's *replacement* issues live
        transactions under generation ``dead_gen + 1`` of the same
        worker slot, and those must never be reaped.
        """
        n_workers = getattr(self.cluster, "n_workers", None)
        if n_workers is None:
            return
        span = TXN_ID_NAMESPACE_SPAN
        in_doubt = self.commit_table.in_doubt_txns()

        def dead(owner: object) -> bool:
            txn_id = owner if isinstance(owner, int) else (
                owner[1] if isinstance(owner, tuple) and len(owner) == 2
                and isinstance(owner[1], int) else None)
            if txn_id is None or txn_id in in_doubt:
                return False
            # namespaces are worker + gen * n_workers: the modulo maps
            # every generation back to its worker slot, the quotient is
            # the generation itself
            ns = (txn_id - 1) // span
            if ns % n_workers != worker:
                return False
            return dead_gen is None or ns // n_workers <= dead_gen

        for server in self.cluster.servers:
            if self._owns is None or self._owns(server.id):
                server.storage.release_where(dead)

    @property
    def n_partitions(self) -> int:
        return self.catalog.n_partitions

    # -- loading ------------------------------------------------------------

    def load(self, table: str, key: Any, fields: dict[str, Any]) -> None:
        """Load one record into its primary partition and all replicas.

        Records of replicated tables are copied to every partition.

        Inside a multiprocess worker (the cluster exposes ``owns``),
        the build is pruned to what this worker can ever serve: records
        of its home partitions, replicated tables (for owned partitions
        only), explicitly-placed hot records, and replica copies hosted
        on owned servers.  Foreign-partition cold records — the bulk of
        the database — are skipped entirely; every access to them
        routes to the owning worker anyway, so the local copies were
        pure memory waste.
        """
        if table in self.catalog.replicated_tables:
            for partition in range(self.n_partitions):
                if self._owns is None or self._owns(partition):
                    self.store(partition).load(table, key, fields)
            return
        partition = self.partition_of(table, key)
        if self._keep_local_copy(partition, table, key):
            self.store(partition).load(table, key, fields)
        if self.replicas is not None:
            self.replicas.load(partition, table, key, fields,
                               server_filter=self._owns)

    def _keep_local_copy(self, partition: int, table: str, key: Any) -> bool:
        """Should this process keep a primary-store copy of the record?"""
        if self._owns is None or self._owns(partition):
            return True
        entries = getattr(self.catalog.scheme, "entries", None)
        return entries is not None and (table, key) in entries

    def loader(self) -> Callable[[str, Any, dict[str, Any]], None]:
        """A ``load(table, key, fields)`` callable for workload populate
        functions."""
        return self.load

    # -- RPC dispatch --------------------------------------------------------

    def register_rpc(self, kind: str, factory: RpcFactory) -> None:
        """Register a handler-coroutine factory for message kind ``kind``."""
        if kind in self._rpc_kinds:
            raise ValueError(f"RPC kind {kind!r} already registered")
        self._rpc_kinds[kind] = factory

    def _dispatcher(self, server_id: int):
        def handle(src: int, request: Any) -> Coroutine:
            kind, body = request
            factory = self._rpc_kinds.get(kind)
            if factory is None:
                raise KeyError(f"no RPC handler for kind {kind!r}")
            return factory(server_id, src, body)
        return handle
