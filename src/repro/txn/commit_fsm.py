"""The commit decision as an explicit, backend-neutral state machine.

Before this module, commit/abort logic was implicit: each executor
inlined its own "replicate, then apply+release" tail, and there was no
seam where a log record or a recovery protocol could attach.  The
:class:`CommitFsm` lifts that decision into one coordinator-side FSM

    INITIALIZE --> PREPARED --> COMMITTED
         \\             \\
          +--> ABORTED <-+

whose transitions are the *only* place durability hooks in (modeled on
tippers-commit's coordinator/participant machines).  Executors drive it
instead of calling ``commit_phase``/``abort_release`` directly.

**With durability off** (``wal=None``) the FSM is a pure refactor:
``prepare`` emits exactly the old ``replicate`` effects, ``commit``
exactly ``commit_phase``, ``abort`` exactly ``abort_release`` — sim
traces are bit-identical.

**With durability on**, transitions persist to the per-server
write-ahead log (:mod:`repro.storage.wal`) and the protocol becomes a
real presumed-abort 2PC: the coordinator logs its PREPARE (full
write-set), ships ``prepare`` verbs to remote written partitions (each
participant logs and stashes the writes), force-logs the DECISION (the
commit point), then ships ``decision`` verbs that apply the stashed
writes and release.  Because writes are buffered until the decision,
recovery is redo-only; because redo writes carry absolute evaluated
values, it is idempotent.  A prepared txn whose coordinator log shows
no decision is *presumed aborted*; a participant's prepared-but-
undecided txn stays locked (in doubt) until a ``recover_query`` against
the coordinator resolves it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..sim import Compute, OneSided, Sleep
from ..sim.codec import DispatchContext, OpDescriptor, op_handler
from ..storage.wal import (R_DECISION, R_END, R_PREPARE, ROLE_COORDINATOR,
                           ROLE_INNER, ROLE_PARTICIPANT, replay_wal)
from .common import AbortReason


class TxnPhase(enum.Enum):
    INITIALIZE = "initialize"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


_LEGAL: dict[TxnPhase, frozenset[TxnPhase]] = {
    TxnPhase.INITIALIZE: frozenset({TxnPhase.PREPARED, TxnPhase.ABORTED}),
    TxnPhase.PREPARED: frozenset({TxnPhase.COMMITTED, TxnPhase.ABORTED}),
    TxnPhase.COMMITTED: frozenset(),
    TxnPhase.ABORTED: frozenset(),
}


class InvalidTransition(RuntimeError):
    """The FSM was driven through an illegal phase change."""


class SimulatedCrash(Exception):
    """Raised by a crash hook to model dying at a protocol point."""

    def __init__(self, point: str):
        super().__init__(point)
        self.point = point


CRASH_HOOK: Callable[[str], None] | None = None
"""Test seam: when set, called at every named protocol point
(``coord:before_prepare``, ``part:after_decision``, ...).  The
crash-matrix tests install a hook that raises :class:`SimulatedCrash`
at the nth occurrence of a chosen point."""


def crash_point(name: str) -> None:
    if CRASH_HOOK is not None:
        CRASH_HOOK(name)


# -- prepared-txn / decision table --------------------------------------------

@dataclass(frozen=True)
class PreparedEntry:
    """One participant-side prepared txn: writes stashed, locks held."""

    partition: int
    txn_id: int
    coordinator: int
    writes: tuple


class CommitTable:
    """Process-wide 2PC bookkeeping: prepared stashes and decisions.

    The stash holds each participant-side prepared txn's writes until
    its decision arrives (or recovery resolves it); the decision table
    is what ``recover_query`` answers from.  Decisions are recorded
    only on durability-enabled runs, so growth is bounded by one run's
    committed count — acceptable for the reproduction's run lengths.
    """

    def __init__(self) -> None:
        self._stash: dict[tuple[int, int], PreparedEntry] = {}
        self._decisions: dict[int, bool] = {}

    def stash(self, partition: int, txn_id: int, coordinator: int,
              writes: tuple) -> None:
        self._stash[(partition, txn_id)] = PreparedEntry(
            partition, txn_id, coordinator, writes)

    def pop_stash(self, partition: int, txn_id: int) -> PreparedEntry | None:
        return self._stash.pop((partition, txn_id), None)

    def stashed_entries(self) -> list[PreparedEntry]:
        return list(self._stash.values())

    def in_doubt_txns(self) -> set[int]:
        """Txn ids with a live prepared stash (their locks must survive
        dead-owner reaping until the decision is known)."""
        return {txn_id for _pid, txn_id in self._stash}

    def record_decision(self, txn_id: int, committed: bool) -> None:
        self._decisions[txn_id] = committed

    def decision_of(self, txn_id: int) -> bool | None:
        return self._decisions.get(txn_id)


# -- write application ---------------------------------------------------------

def apply_wire_writes(store, writes) -> list:
    """Apply wire-form writes ``(kind, table, key, values)`` to a store;
    returns the committed ``((table, key), version)`` pairs."""
    versions: list[tuple[tuple[str, Any], int]] = []
    for kind, table, key, values in writes:
        rid = (table, key)
        if kind == "update":
            store.write(table, key, values)
            versions.append((rid, store.version_of(table, key)))
        elif kind == "insert":
            store.insert(table, key, values)
            versions.append((rid, 0))
        else:
            old = store.version_of(table, key)
            store.delete(table, key)
            versions.append((rid, (old or 0) + 1))
    return versions


def redo_wire_writes(store, writes) -> None:
    """Re-apply logged writes during recovery.

    Tolerant where :func:`apply_wire_writes` can assume live-path
    invariants: an update whose record vanished re-inserts it, an
    insert that already landed overwrites — redo must be idempotent
    against a store that already saw any prefix of these writes.
    """
    for kind, table, key, values in writes:
        if kind == "update":
            if not store.write(table, key, values):
                store.insert(table, key, values)
        elif kind == "insert":
            if not store.insert(table, key, values):
                store.write(table, key, values)
        else:
            store.delete(table, key)


def wire_writes(buffered) -> tuple:
    """Wire form of a partition's buffered writes."""
    return tuple((w.kind.value, w.table, w.key, w.values) for w in buffered)


# -- the coordinator FSM -------------------------------------------------------

class CommitFsm:
    """Drives one transaction's commit protocol at the coordinator.

    ``executor`` supplies the cost model, network rounds, and verb
    builders; ``state`` is its mutable per-txn state.  The FSM owns the
    phase variable, the write-set once prepared, and — when the home
    server has a WAL — the durability of every transition.
    """

    __slots__ = ("ex", "state", "phase", "writes", "wal", "_prepared",
                 "_logged_prepare")

    def __init__(self, executor, state):
        self.ex = executor
        self.state = state
        self.phase = TxnPhase.INITIALIZE
        self.writes: dict[int, list] = {}
        self.wal = executor.db.wal_of(state.request.home)
        self._prepared: set[int] = set()
        self._logged_prepare = False

    def _transition(self, to: TxnPhase) -> None:
        if to not in _LEGAL[self.phase]:
            raise InvalidTransition(
                f"txn {self.state.txn_id}: illegal commit-FSM transition "
                f"{self.phase.value} -> {to.value}")
        self.phase = to

    # -- prepare -----------------------------------------------------------

    def prepare(self, writes: dict[int, list]) -> Generator:
        """INITIALIZE -> PREPARED: persist the write-set, prepare remote
        participants, replicate.  Returns False (leaving the FSM in
        INITIALIZE, abort pending) if a participant cannot prepare."""
        ex, state = self.ex, self.state
        self.writes = writes
        if self.wal is not None:
            t0 = ex.span_start(state)
            ok = yield from self._durable_prepare(writes)
            if t0 is not None:
                ex.emit_span(state, "prepare", t0, ok)
            if not ok:
                return False
        t0 = ex.span_start(state)
        yield from ex.replicate(state, writes)
        if (t0 is not None and writes and ex.cfg.replicate
                and ex.db.replicas is not None):
            ex.emit_span(state, "replicate", t0)
        self._transition(TxnPhase.PREPARED)
        return True

    def _durable_prepare(self, writes: dict[int, list]) -> Generator:
        ex, state = self.ex, self.state
        home = state.request.home
        crash_point("coord:before_prepare")
        wire = tuple((pid, wire_writes(writes[pid]))
                     for pid in sorted(writes))
        self.wal.append((R_PREPARE, state.txn_id, ROLE_COORDINATOR,
                         home, wire))
        self._logged_prepare = True
        yield Compute(self.wal.append_cost_us())
        crash_point("coord:after_prepare")
        remote = [pid for pid in sorted(writes) if pid != home]
        if not remote:
            return True
        items = [(pid, _prepare_op(ex.db, pid, wire_writes(writes[pid]),
                                   state.txn_id, home))
                 for pid in remote]
        self._prepared = set(remote)
        yield Compute(ex.cfg.cpu_dispatch_us
                      + ex.round_cpu((pid for pid, _ in items), home))
        results = yield from ex.network_round(items, kind="prepare")
        for result in results:
            if result[0] != "ok":
                state.abort_reason = AbortReason.PEER_DOWN
                return False
        return True

    # -- decide ------------------------------------------------------------

    def commit(self) -> Generator:
        """PREPARED -> COMMITTED: log the decision (the commit point),
        then apply + release everywhere."""
        ex, state = self.ex, self.state
        t0 = ex.span_start(state)
        if self.wal is None:
            self._transition(TxnPhase.COMMITTED)
            yield from ex.commit_phase(state, self.writes)
        else:
            crash_point("coord:before_decision")
            # the forced sync is the commit point: once this record is
            # durable the txn is committed no matter who dies next
            self.wal.append((R_DECISION, state.txn_id, True), sync=True)
            ex.db.commit_table.record_decision(state.txn_id, True)
            self._transition(TxnPhase.COMMITTED)
            yield Compute(self.wal.append_cost_us(sync=True))
            crash_point("coord:after_decision")
            yield from self._decision_round(True)
            self.wal.append((R_END, state.txn_id))
        if t0 is not None:
            ex.emit_span(state, "commit", t0)

    def abort(self) -> Generator:
        """-> ABORTED: log the (presumed) abort if a prepare was logged,
        release every participant."""
        ex, state = self.ex, self.state
        t0 = ex.span_start(state)
        if self.wal is not None and self._logged_prepare:
            # unforced: presumed abort means absence already implies it
            self.wal.append((R_DECISION, state.txn_id, False))
            ex.db.commit_table.record_decision(state.txn_id, False)
        self._transition(TxnPhase.ABORTED)
        if self._prepared:
            yield from self._decision_round(False)
        else:
            yield from ex.abort_release(state)
        if self.wal is not None and self._logged_prepare:
            self.wal.append((R_END, state.txn_id))
        if t0 is not None:
            ex.emit_span(state, "release", t0, ok=False)

    def mark_aborted(self) -> None:
        """Transition-only abort for failures that hold nothing (OCC's
        lock-free read phase): no release round, no log record."""
        self._transition(TxnPhase.ABORTED)

    def _decision_round(self, committed: bool) -> Generator:
        """Announce the decision: prepared participants get a
        ``decision`` verb (they hold the writes); everyone else gets
        the classic combined apply+release (or bare release)."""
        ex, state = self.ex, self.state
        writes = self.writes
        targets = set(state.touched) | set(writes)
        if not targets:
            return
        total = (sum(len(ws) for ws in writes.values()) if committed
                 else 0)
        yield Compute(ex.cfg.cpu_dispatch_us + ex.cfg.cpu_apply_us * total)
        items = []
        for pid in sorted(targets):
            if pid in self._prepared:
                items.append((pid, _decision_op(ex.db, pid, state.txn_id,
                                                committed)))
            elif committed:
                items.append((pid, ex.commit_op(pid, writes.get(pid, []),
                                                state.txn_id)))
            else:
                items.append((pid, ex.release_op(pid, state.txn_id)))
        results = yield from ex.network_round(
            items, kind="commit" if committed else "release")
        if committed:
            for versions in results:
                # a participant lost mid-round replies PEER_DOWN; the
                # decision stands — it resolves itself via
                # recover_query when the worker returns
                if isinstance(versions, list):
                    state.write_versions.extend(versions)


# -- participant verbs ---------------------------------------------------------

def _prepare_op(db, pid: int, writes: tuple, txn_id: int,
                coordinator: int) -> OpDescriptor:
    return OpDescriptor("prepare", pid,
                        args=(writes, txn_id,
                              coordinator)).bind(db.dispatch_context)


@op_handler("prepare")
def _do_prepare(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    writes, txn_id, coordinator = d.args
    crash_point("part:before_prepare")
    wal = None if ctx.wal_of is None else ctx.wal_of(d.partition)
    if wal is not None:
        wal.append((R_PREPARE, txn_id, ROLE_PARTICIPANT, coordinator,
                    writes))
    crash_point("part:after_prepare")
    ctx.commits.stash(d.partition, txn_id, coordinator, writes)
    return ("ok",)


def _decision_op(db, pid: int, txn_id: int,
                 committed: bool) -> OpDescriptor:
    return OpDescriptor("decision", pid,
                        args=(txn_id, committed)).bind(db.dispatch_context)


@op_handler("decision")
def _do_decision(ctx: DispatchContext, d: OpDescriptor) -> list:
    txn_id, committed = d.args
    store = ctx.store_of(d.partition)
    wal = None if ctx.wal_of is None else ctx.wal_of(d.partition)
    if wal is not None:
        wal.append((R_DECISION, txn_id, bool(committed)))
    crash_point("part:after_decision")
    entry = None if ctx.commits is None else ctx.commits.pop_stash(
        d.partition, txn_id)
    versions: list = []
    if committed and entry is not None:
        versions = apply_wire_writes(store, entry.writes)
    store.release_all(txn_id)
    if wal is not None:
        wal.append((R_END, txn_id))
    return versions


def _recover_query_op(db, pid: int, txn_id: int) -> OpDescriptor:
    return OpDescriptor("recover_query", pid,
                        args=(txn_id,)).bind(db.dispatch_context)


@op_handler("recover_query")
def _do_recover_query(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    (txn_id,) = d.args
    decision = (None if ctx.commits is None
                else ctx.commits.decision_of(txn_id))
    if decision is None:
        return ("unknown",)  # presumed abort at the asker
    return ("committed",) if decision else ("aborted",)


# -- recovery ------------------------------------------------------------------

def recover_database(db) -> list[PreparedEntry]:
    """Replay every owned server's WAL into a freshly built database.

    Redo-only: committed txns' writes are re-applied in decision-log
    order (lock serialization made that order correct per key);
    coordinator records redo only home-partition writes (remote
    partitions replay their own participant records).  Coordinator
    prepares without a decision become recorded aborts (presumed
    abort); participant prepares without a decision are returned as
    in-doubt entries — locks conceptually theirs stay theirs until
    :func:`resolve_in_doubt_local` or :func:`recovery_program` settles
    them.
    """
    stats = db.recovery
    in_doubt: list[PreparedEntry] = []
    replayed_any = False
    for sid in sorted(db.wal_servers()):
        wal = db.wal_of(sid)
        records = replay_wal(wal.path)
        if not records:
            continue
        replayed_any = True
        in_doubt.extend(_replay_server(db, sid, records, stats))
    if replayed_any:
        stats.recoveries += 1
    return in_doubt


def _replay_server(db, sid: int, records: list[tuple],
                   stats) -> list[PreparedEntry]:
    store = db.store(sid)
    prepared: dict[int, tuple] = {}  # txn -> (role, peer, payload)
    decided: dict[int, bool] = {}
    for record in records:
        rtype = record[0]
        if rtype == R_PREPARE:
            _t, txn_id, role, peer, payload = record
            prepared[txn_id] = (role, peer, payload)
        elif rtype == R_DECISION:
            _t, txn_id, committed = record
            decided[txn_id] = bool(committed)
            entry = prepared.get(txn_id)
            if committed and entry is not None:
                role, _peer, payload = entry
                redo_wire_writes(store, _server_writes(sid, role, payload))
                stats.txns_redone += 1
    in_doubt: list[PreparedEntry] = []
    for txn_id, (role, peer, payload) in prepared.items():
        decision = decided.get(txn_id)
        if decision is not None:
            if role == ROLE_COORDINATOR:
                # keep answering recover_query across the restart
                db.commit_table.record_decision(txn_id, decision)
            continue
        if role == ROLE_COORDINATOR:
            # the commit point was never logged: presumed abort
            db.commit_table.record_decision(txn_id, False)
            stats.in_doubt_resolved += 1
        elif role == ROLE_PARTICIPANT:
            db.commit_table.stash(sid, txn_id, peer, payload)
            in_doubt.append(PreparedEntry(sid, txn_id, peer, payload))
        # ROLE_INNER without a decision: the unilateral critical
        # section never committed — nothing is in doubt
    return in_doubt


def _server_writes(sid: int, role: int, payload: tuple) -> tuple:
    """The writes a server's own record redoes.  A coordinator record
    carries the full per-partition write-set but redoes only the home
    partition's share — every other partition has (or had) its own
    participant record, including sibling partitions of the same
    process (double-apply hazard).  Participant and inner records carry
    exactly this server's writes."""
    if role in (ROLE_PARTICIPANT, ROLE_INNER):
        return payload
    for pid, writes in payload:
        if pid == sid:
            return writes
    return ()


def resolve_in_doubt_local(db, entries: list[PreparedEntry]) -> None:
    """Settle in-doubt txns against this process's own decision table
    (single-process recovery: the coordinator's log was replayed into
    the same table)."""
    for entry in entries:
        decision = db.commit_table.decision_of(entry.txn_id)
        _settle(db, entry, decision is True)


def recovery_program(db, entries: list[PreparedEntry],
                     retry_sleep_us: float = 500.0,
                     max_attempts: int = 10) -> Generator:
    """Engine program settling in-doubt txns via ``recover_query``
    verbs to each txn's coordinator server (the mp recovery path).

    An unreachable coordinator is retried with backoff; if it stays
    down past ``max_attempts`` the txn falls back to presumed abort —
    the availability tradeoff presumed-abort 2PC always makes."""
    for entry in entries:
        committed = False
        for _attempt in range(max_attempts):
            op = _recover_query_op(db, entry.coordinator, entry.txn_id)
            result = yield OneSided(entry.coordinator, op,
                                    kind="recover_query")
            if result[0] == "committed":
                committed = True
                break
            if result[0] in ("aborted", "unknown"):
                break
            yield Sleep(retry_sleep_us)
        _settle(db, entry, committed)


def _settle(db, entry: PreparedEntry, committed: bool) -> None:
    store = db.store(entry.partition)
    db.commit_table.pop_stash(entry.partition, entry.txn_id)
    if committed:
        apply_wire_writes(store, entry.writes)
    wal = db.wal_of(entry.partition)
    if wal is not None:
        wal.append((R_DECISION, entry.txn_id, committed))
        wal.append((R_END, entry.txn_id))
    store.release_all(entry.txn_id)
    db.recovery.in_doubt_resolved += 1
