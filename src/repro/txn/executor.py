"""Shared coordinator machinery for all execution models.

All executors (traditional 2PL+2PC, OCC, and Chiller's two-region model)
drive transactions the same way: resolve operation instances into
*dependency layers* (everything whose primary key is computable goes into
one parallel network round; pk-dependent operations wait for the next
layer), buffer writes at the coordinator, and apply them at commit while
releasing locks.  The differences — when locks are taken, whether a
validation phase exists, whether an inner region is delegated — live in
the subclasses.

Buffering writes until commit means an aborted transaction never has to
undo anything: releasing its locks is the entire rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from ..analysis import OpInstance, OpKind
from ..replication import ReplicaWrite
from ..sim import (All, BatchedOneSided, Compute, OneSided,
                   approx_payload_bytes)
from ..sim.codec import (DispatchContext, OpDescriptor, op_handler,
                         register_wire_atom)
from ..storage import LockMode
from .commit_fsm import apply_wire_writes
from .common import (AbortReason, BufferedWrite, CommitLog, Outcome,
                     TxnRequest, WriteKind, next_txn_id)
from .database import Database
from .history import HistoryRecorder


@dataclass(frozen=True)
class ExecConfig:
    """CPU cost and behaviour knobs for the execution engines.

    The CPU constants are per-coordinator-action, in microseconds; they
    are what makes throughput saturate once an engine's core is busy
    (Fig. 9a's plateau).
    """

    cpu_dispatch_us: float = 0.4
    """Assembling and issuing one batch of network operations."""

    cpu_op_us: float = 0.25
    """Coordinator-side logic per *remote* record operation (posting
    and completing an RDMA verb costs real CPU)."""

    cpu_local_op_us: float = 0.08
    """Per-operation cost against the local partition (plain memory
    access path).  The local/remote CPU gap is what makes locality pay
    off even when coroutines hide network latency."""

    cpu_batched_op_us: float = 0.05
    """Coordinator-side cost of each verb after the first in a
    doorbell-batched chain: the doorbell write and completion poll are
    amortized over the chain, so only WQE assembly remains.  Only used
    when the network's ``doorbell_batching`` knob is on."""

    cpu_apply_us: float = 0.15
    """Evaluating and applying one buffered write at commit time."""

    cpu_check_us: float = 0.1
    """Evaluating one CHECK predicate."""

    cpu_replica_apply_us: float = 0.05
    """A replica applying one shipped record value (a memcpy, cheaper
    than evaluating the write at the coordinator)."""

    replicate: bool = True
    """Ship write-sets to replicas before commit (paper Section 5)."""

    bypass_inner_locks: bool = False
    """Section 3.3's optional optimization: skip lock acquisition inside
    the inner region, relying on the host core's serialization — legal
    only when no transaction ever touches inner records through an
    outer region (guaranteeable for TPC-C's warehouse/district rows,
    not in general; the paper's implementation leaves it off, as we do
    by default).  Conflicting locks held by outer regions still abort
    the inner region."""


@dataclass
class TxnState:
    """Mutable per-transaction execution state at the coordinator."""

    txn_id: int
    request: TxnRequest
    instances: list[OpInstance]
    start: float
    ctx: dict[str, Any] = field(default_factory=dict)
    locations: dict[str, tuple[str, Any, int]] = field(default_factory=dict)
    touched: set[int] = field(default_factory=set)
    reads: list[tuple[tuple[str, Any], int]] = field(default_factory=list)
    write_versions: list[tuple[tuple[str, Any], int]] = field(
        default_factory=list)
    pending_checks: list[OpInstance] = field(default_factory=list)
    abort_reason: AbortReason | None = None
    inner_host: int | None = None
    used_two_region: bool = False
    epoch: int = 0
    """Placement epoch captured at start; read misses on records that
    migrated past this epoch abort as MIGRATED (retryable) instead of
    READ_MISS (an application abort)."""
    trace: int = 0
    """Observability trace id (0 = untraced); rides the runtime's task
    context and the mp wire frames so every phase span this transaction
    emits — on any server — stitches into one tree."""
    attempt: int = 0
    """Retry ordinal of the driving request (0 = first attempt)."""

    @property
    def params(self) -> Any:
        return self.request.params


class BaseExecutor:
    """Common machinery; subclasses implement :meth:`execute`."""

    name = "base"

    record_footprints = False
    """When on, committed Outcomes carry their actual read/write sets
    (``Outcome.read_set``/``write_set``) so access telemetry
    (:mod:`repro.placement`) can observe them.  Off by default: the
    static path ships no footprints."""

    def __init__(self, db: Database, config: ExecConfig | None = None,
                 history: HistoryRecorder | None = None):
        self.db = db
        self.cfg = config or ExecConfig()
        self.history = history

    def execute(self, request: TxnRequest) -> Generator:
        """Coroutine executing one transaction; returns an Outcome."""
        raise NotImplementedError

    # -- state setup ------------------------------------------------------

    def new_state(self, request: TxnRequest, trace: int = 0,
                  attempt: int = 0) -> TxnState:
        proc = self.db.registry.get(request.proc)
        instances = proc.instantiate(request.params)
        state = TxnState(txn_id=next_txn_id(), request=request,
                         instances=instances,
                         start=self.db.cluster.sim.now,
                         epoch=self.db.placement_epoch(),
                         trace=trace, attempt=attempt)
        state.pending_checks = [inst for inst in instances
                                if inst.spec.kind is OpKind.CHECK]
        if trace:
            # bind the context to the driving task so RPCs and (on mp)
            # wire frames issued on its behalf carry the trace id
            self.db.cluster.engine(request.home).runtime.set_trace(trace)
        return state

    # -- pre-execution read/write-set estimation -----------------------------

    def estimate_rw_sets(self, request: TxnRequest,
                         ) -> tuple[frozenset, frozenset]:
        """Records this request will touch, as knowable *before* running.

        Returns ``(reads, writes)`` of ``(table, key)`` pairs from the
        static analysis's placements.  Only *exact* placements —
        parameter-computable keys — are claimed: a derived key's
        partition hint is placement-equivalent but is not the record's
        identity, so claiming it would fuse unrelated conflict classes.
        A read taken ``for_update`` counts as a write — it acquires the
        exclusive lock up front, so it conflicts like one.  This is the
        fingerprint source for conflict-class scheduling
        (:mod:`repro.sched.conflict`).
        """
        proc = self.db.registry.get(request.proc)
        reads: set[tuple[str, Any]] = set()
        writes: set[tuple[str, Any]] = set()
        for inst in proc.instantiate(request.params):
            spec = inst.spec
            if spec.kind is OpKind.CHECK:
                continue
            placement = inst.placement(request.params)
            if placement is None or not placement.exact:
                continue
            record = (placement.table, placement.key)
            if spec.is_write() or spec.lock is LockMode.EXCLUSIVE:
                writes.add(record)
            else:
                reads.add(record)
        return frozenset(reads - writes), frozenset(writes)

    # -- parallel network rounds -------------------------------------------

    @property
    def doorbell_batching(self) -> bool:
        return self.db.cluster.network.config.doorbell_batching

    def network_round(self, items: list[tuple[int, Callable[[], Any]]],
                      kind: str = "one_sided",
                      sizes: list[int] | None = None) -> Generator:
        """Issue ``(partition, op)`` pairs as one parallel network round.

        With doorbell batching enabled, verbs sharing a destination are
        emitted as one :class:`~repro.sim.BatchedOneSided` group each
        (one fused round trip on the wire); otherwise the round is the
        historical flat ``All`` of individual verbs.  Returns the ops'
        results in ``items`` order either way.
        """
        if not self.doorbell_batching:
            results = yield All([
                OneSided(pid, op, kind=kind,
                         nbytes=sizes[i] if sizes else None)
                for i, (pid, op) in enumerate(items)])
            return results
        groups: dict[int, list[int]] = {}
        for i, (pid, _) in enumerate(items):
            groups.setdefault(pid, []).append(i)
        nested = yield All([
            BatchedOneSided(pid, tuple(items[i][1] for i in idxs),
                            kind=kind,
                            nbytes=([sizes[i] for i in idxs]
                                    if sizes else None))
            for pid, idxs in groups.items()])
        results: list[Any] = [None] * len(items)
        for idxs, values in zip(groups.values(), nested):
            for i, value in zip(idxs, values):
                results[i] = value
        return results

    def round_cpu(self, partitions: Iterable[int], home: int,
                  local_cost: float | None = None) -> float:
        """Coordinator CPU to post one round of one-sided verbs.

        Unbatched, every remote verb pays full posting+completion cost;
        in a doorbell-batched chain only the destination's first verb
        does, the rest just append a WQE (``cpu_batched_op_us``).  Local
        verbs never batch and always pay ``local_cost`` (default: the
        plain memory-access rate; OCC's read-validation round
        historically charges the remote rate even at home and passes it
        explicitly).
        """
        cfg = self.cfg
        if local_cost is None:
            local_cost = cfg.cpu_local_op_us
        if not self.doorbell_batching:
            return sum(local_cost if pid == home else cfg.cpu_op_us
                       for pid in partitions)
        cost = 0.0
        seen: set[int] = set()
        for pid in partitions:
            if pid == home:
                cost += local_cost
            elif pid in seen:
                cost += cfg.cpu_batched_op_us
            else:
                seen.add(pid)
                cost += cfg.cpu_op_us
        return cost

    # -- phase spans -------------------------------------------------------

    def emit_span(self, state: TxnState, phase: str, t0: float,
                  ok: bool = True) -> None:
        """Record one coordinator-side phase span for a traced txn.

        Pure bookkeeping — no effects, no RNG — so emission never
        perturbs the sim event stream.  Callers guard with
        :meth:`span_start` returning a non-None t0.
        """
        self.db.tracer.span(
            state.trace, state.txn_id, state.attempt, state.request.home,
            phase, t0, self.db.cluster.sim.now,
            "ok" if ok else (state.abort_reason.name.lower()
                             if state.abort_reason else "abort"))

    def span_start(self, state: TxnState) -> float | None:
        """Phase start timestamp, or None when this txn is untraced."""
        if self.db.tracer.enabled and state.trace:
            return self.db.cluster.sim.now
        return None

    # -- layered lock+read phase (wrapped for tracing) ---------------------

    def lock_read_phase(self, state: TxnState,
                        ops: Iterable[OpInstance] | None = None,
                        locking: bool = True) -> Generator:
        """Execute READ (and INSERT-lock) ops in dependency layers.

        With ``locking=False`` this is an OCC read phase: reads take no
        locks and inserts defer entirely to validation.  Returns True on
        success; on failure ``state.abort_reason`` is set.
        """
        t0 = self.span_start(state)
        if t0 is None:
            return (yield from self._lock_read_phase(state, ops, locking))
        ok = yield from self._lock_read_phase(state, ops, locking)
        self.emit_span(state, "lock" if locking else "read", t0, ok)
        return ok

    def _lock_read_phase(self, state: TxnState,
                         ops: Iterable[OpInstance] | None,
                         locking: bool) -> Generator:
        if ops is None:
            ops = state.instances
        pending = [inst for inst in ops
                   if inst.spec.kind in (OpKind.READ, OpKind.INSERT)]
        if not (yield from self.run_ready_checks(state)):
            return False
        while pending:
            batch = [inst for inst in pending if self._resolvable(state,
                                                                  inst)]
            if not batch:
                raise RuntimeError(
                    f"txn {state.txn_id}: ops {[i.name for i in pending]} "
                    f"can never resolve their keys (dependency bug)")
            pending = [inst for inst in pending if inst not in batch]
            ok = yield from self._run_layer(state, batch, locking)
            if not ok:
                return False
            if not (yield from self.run_ready_checks(state)):
                return False
        return True

    def _resolvable(self, state: TxnState, inst: OpInstance) -> bool:
        return all(src in state.ctx for src in inst.pk_source_instances())

    def _run_layer(self, state: TxnState, batch: list[OpInstance],
                   locking: bool) -> Generator:
        home = state.request.home
        items: list[tuple[int, Callable[[], Any]]] = []
        metas: list[tuple[OpInstance, str, Any, int]] = []
        for inst in batch:
            table, key = self._resolve_record(state, inst)
            pid = self.db.partition_of(table, key,
                                       reader=state.request.home)
            state.locations[inst.name] = (table, key, pid)
            if inst.spec.kind is OpKind.READ:
                state.touched.add(pid)
                op = (_lock_read_op(self.db, pid, table, key,
                                    inst.lock_mode(), state.txn_id)
                      if locking else
                      _plain_read_op(self.db, pid, table, key))
                items.append((pid, op))
                metas.append((inst, "read", key, pid))
            else:  # INSERT: reserve the bucket now (2PL); skip under OCC
                if locking:
                    state.touched.add(pid)
                    items.append((pid, _lock_insert_op(
                        self.db, pid, table, key, state.txn_id)))
                    metas.append((inst, "insert", key, pid))
        if not items:
            return True
        yield Compute(self.cfg.cpu_dispatch_us
                      + self.round_cpu((pid for pid, _ in items), home))
        results = yield from self.network_round(items, kind="lock_read")
        for (inst, action, key, pid), result in zip(metas, results):
            status = result[0]
            if status == "conflict":
                state.abort_reason = AbortReason.LOCK_CONFLICT
                return False
            if status == "missing":
                table = state.locations[inst.name][0]
                # a record that migrated after this txn resolved its
                # placement is not gone — retrying re-resolves it at
                # its new home (always READ_MISS under static schemes)
                state.abort_reason = (
                    AbortReason.MIGRATED
                    if self.db.moved_since(table, key, state.epoch)
                    else AbortReason.READ_MISS)
                return False
            if status == "duplicate":
                state.abort_reason = AbortReason.DUPLICATE_KEY
                return False
            if status == "peer_down":
                # the runtime short-circuited a verb to a dead worker;
                # retryable — the record's owner is being respawned
                state.abort_reason = AbortReason.PEER_DOWN
                return False
            if action == "read":
                _, fields, version = result
                table = state.locations[inst.name][0]
                state.ctx[inst.name] = fields
                state.reads.append(((table, key), version))
        return True

    def _resolve_record(self, state: TxnState,
                        inst: OpInstance) -> tuple[str, Any]:
        spec = inst.spec
        if spec.kind in (OpKind.UPDATE, OpKind.DELETE):
            target = inst.target_instance()
            table, key, _pid = state.locations[target]
            return table, key
        table = spec.table
        assert table is not None
        return table, inst.concrete_key(state.params, state.ctx)

    # -- checks ------------------------------------------------------------

    def run_ready_checks(self, state: TxnState) -> Generator:
        """Evaluate CHECKs whose deps are bound; False on logical abort."""
        still_pending = []
        for inst in state.pending_checks:
            if all(dep in state.ctx for dep in inst.dep_instance_names()):
                yield Compute(self.cfg.cpu_check_us)
                if not inst.run_check(state.params, state.ctx):
                    state.abort_reason = AbortReason.LOGICAL
                    return False
            else:
                still_pending.append(inst)
        state.pending_checks = still_pending
        return True

    # -- write evaluation and commit -----------------------------------------

    def evaluate_writes(self, state: TxnState,
                        ops: Iterable[OpInstance] | None = None,
                        ) -> dict[int, list[BufferedWrite]]:
        """Evaluate write ops against the bound ctx; group by partition."""
        if ops is None:
            ops = state.instances
        by_partition: dict[int, list[BufferedWrite]] = {}
        for inst in ops:
            kind = inst.spec.kind
            if kind is OpKind.UPDATE:
                target = inst.target_instance()
                table, key, pid = state.locations[target]
                write = BufferedWrite(WriteKind.UPDATE, table, key,
                                      inst.run_update(state.params,
                                                      state.ctx))
            elif kind is OpKind.INSERT:
                table, key, pid = self._insert_location(state, inst)
                write = BufferedWrite(WriteKind.INSERT, table, key,
                                      inst.run_insert_fields(state.params,
                                                             state.ctx))
            elif kind is OpKind.DELETE:
                target = inst.target_instance()
                table, key, pid = state.locations[target]
                write = BufferedWrite(WriteKind.DELETE, table, key)
            else:
                continue
            by_partition.setdefault(pid, []).append(write)
        return by_partition

    def _insert_location(self, state: TxnState,
                         inst: OpInstance) -> tuple[str, Any, int]:
        location = state.locations.get(inst.name)
        if location is not None:
            return location
        table = inst.spec.table
        assert table is not None
        key = inst.concrete_key(state.params, state.ctx)
        pid = self.db.partition_of(table, key, reader=state.request.home)
        state.locations[inst.name] = (table, key, pid)
        return table, key, pid

    def replicate(self, state: TxnState,
                  writes: dict[int, list[BufferedWrite]]) -> Generator:
        """Ship write-sets to every replica of every written partition."""
        if not self.cfg.replicate or self.db.replicas is None or not writes:
            return
        replicas = self.db.replicas
        account = self.db.cluster.network.config.account_payload_bytes
        items: list[tuple[int, Callable[[], Any]]] = []
        sizes: list[int] = []
        for pid, partition_writes in writes.items():
            shipped = tuple(_to_replica_write(w) for w in partition_writes)
            # with accounting off, None lets the network charge its
            # nominal verb size like every other unestimated verb
            nbytes = approx_payload_bytes(shipped) if account else None
            for rserver in replicas.replica_servers(pid):
                items.append((rserver,
                              _replica_apply_op(self.db, rserver, pid,
                                                shipped)))
                sizes.append(nbytes)
        if items:
            yield Compute(self.cfg.cpu_dispatch_us)
            yield from self.network_round(items, kind="replicate",
                                          sizes=sizes)

    def commit_phase(self, state: TxnState,
                     writes: dict[int, list[BufferedWrite]],
                     partitions: Iterable[int] | None = None) -> Generator:
        """Apply buffered writes and release all locks, one round."""
        targets = set(partitions if partitions is not None
                      else state.touched)
        targets |= set(writes)
        if not targets:
            return
        total_writes = sum(len(ws) for ws in writes.values())
        yield Compute(self.cfg.cpu_dispatch_us
                      + self.cfg.cpu_apply_us * total_writes)
        items = [(pid, _commit_op(self.db, pid,
                                  writes.get(pid, []), state.txn_id))
                 for pid in sorted(targets)]
        results = yield from self.network_round(items, kind="commit")
        for versions in results:
            state.write_versions.extend(versions)

    def commit_op(self, pid: int, writes: list[BufferedWrite],
                  txn_id: int) -> OpDescriptor:
        """One partition's combined apply+release verb (for the commit
        FSM's decision round)."""
        return _commit_op(self.db, pid, writes, txn_id)

    def release_op(self, pid: int, txn_id: int) -> OpDescriptor:
        """One partition's bare release verb."""
        return _release_op(self.db, pid, txn_id)

    def abort_release(self, state: TxnState) -> Generator:
        """Release every lock the transaction holds (its full rollback)."""
        if not state.touched:
            return
        yield Compute(self.cfg.cpu_dispatch_us)
        yield from self.network_round(
            [(pid, _release_op(self.db, pid, state.txn_id))
             for pid in sorted(state.touched)],
            kind="release")

    # -- outcome -----------------------------------------------------------

    def finish(self, state: TxnState) -> Outcome:
        committed = state.abort_reason is None
        if committed and self.history is not None:
            self.history.record(CommitLog(state.txn_id,
                                          reads=state.reads,
                                          writes=state.write_versions))
        read_set: tuple = ()
        write_set: tuple = ()
        if committed and self.record_footprints:
            # replicated-table records resolve to the reader (always
            # local, never movable): no placement signal, keep them out
            replicated = self.db.catalog.replicated_tables
            write_set = tuple({rid: None
                               for rid, _v in state.write_versions
                               if rid[0] not in replicated})
            write_rids = set(write_set)
            read_set = tuple({rid: None for rid, _v in state.reads
                              if rid not in write_rids
                              and rid[0] not in replicated})
        return Outcome(txn_id=state.txn_id, proc=state.request.proc,
                       committed=committed, reason=state.abort_reason,
                       start=state.start, end=self.db.cluster.sim.now,
                       partitions=frozenset(state.touched),
                       inner_host=state.inner_host,
                       used_two_region=state.used_two_region,
                       read_set=read_set, write_set=write_set)


# -- one-sided verbs as descriptors ------------------------------------------
#
# Remote record operations are emitted as picklable
# :class:`~repro.sim.codec.OpDescriptor` data — never closures — so
# every backend (including the multiprocess one) can ship them across a
# real serialization boundary.  The builders below bind each descriptor
# to this database's dispatch context, which makes it a plain callable
# for the in-process backends; the ``@op_handler`` functions are the
# server-side dispatch table executing the verb against the target
# partition's (local copy of the) store.

# lock modes travel on every lock_read; interned as wire atoms they
# pack to one index byte instead of a pickled enum reference
register_wire_atom(LockMode.SHARED)
register_wire_atom(LockMode.EXCLUSIVE)


def _lock_read_op(db: Database, pid: int, table: str, key: Any,
                  mode: LockMode, txn_id: int) -> OpDescriptor:
    return OpDescriptor("lock_read", pid, table, key,
                        (mode, txn_id)).bind(db.dispatch_context)


@op_handler("lock_read")
def _do_lock_read(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    store = ctx.store_of(d.partition)
    mode, txn_id = d.args
    if not store.try_lock(d.table, d.key, mode, txn_id):
        return ("conflict",)
    result = store.read(d.table, d.key)
    if result is None:
        return ("missing",)
    fields, version = result
    return ("ok", fields, version)


def _plain_read_op(db: Database, pid: int, table: str,
                   key: Any) -> OpDescriptor:
    return OpDescriptor("plain_read", pid, table,
                        key).bind(db.dispatch_context)


@op_handler("plain_read")
def _do_plain_read(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    result = ctx.store_of(d.partition).read(d.table, d.key)
    if result is None:
        return ("missing",)
    fields, version = result
    return ("ok", fields, version)


def _lock_insert_op(db: Database, pid: int, table: str, key: Any,
                    txn_id: int) -> OpDescriptor:
    return OpDescriptor("lock_insert", pid, table, key,
                        (txn_id,)).bind(db.dispatch_context)


@op_handler("lock_insert")
def _do_lock_insert(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    store = ctx.store_of(d.partition)
    (txn_id,) = d.args
    if not store.try_lock(d.table, d.key, LockMode.EXCLUSIVE, txn_id):
        return ("conflict",)
    if store.read(d.table, d.key) is not None:
        return ("duplicate",)
    return ("ok",)


def _commit_op(db: Database, pid: int, writes: list[BufferedWrite],
               txn_id: int) -> OpDescriptor:
    wire = tuple((w.kind.value, w.table, w.key, w.values) for w in writes)
    return OpDescriptor("commit", pid,
                        args=(wire, txn_id)).bind(db.dispatch_context)


@op_handler("commit")
def _do_commit(ctx: DispatchContext, d: OpDescriptor) -> list:
    store = ctx.store_of(d.partition)
    writes, txn_id = d.args
    versions = apply_wire_writes(store, writes)
    store.release_all(txn_id)
    return versions


def _release_op(db: Database, pid: int, txn_id: int) -> OpDescriptor:
    return OpDescriptor("release", pid,
                        args=(txn_id,)).bind(db.dispatch_context)


@op_handler("release")
def _do_release(ctx: DispatchContext, d: OpDescriptor) -> int:
    (txn_id,) = d.args
    return ctx.store_of(d.partition).release_all(txn_id)


def _to_replica_write(write: BufferedWrite) -> ReplicaWrite:
    return ReplicaWrite(write.kind.value, write.table, write.key,
                        write.values)


def _replica_apply_op(db: Database, rserver: int, pid: int,
                      writes: tuple[ReplicaWrite, ...]) -> OpDescriptor:
    return OpDescriptor("replica_apply", rserver,
                        args=(pid, writes)).bind(db.dispatch_context)


@op_handler("replica_apply")
def _do_replica_apply(ctx: DispatchContext, d: OpDescriptor) -> None:
    if ctx.replicas is None:
        raise RuntimeError("replica_apply verb arrived but this process "
                           "has no ReplicaManager")
    pid, writes = d.args
    return ctx.replicas.apply(d.partition, pid, writes)
