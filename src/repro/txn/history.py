"""Committed-history recording and conflict-serializability checking.

Every executor can log, per committed transaction, which record versions
it read and which versions its writes produced.  From those logs we
reconstruct the direct-conflict (precedence) graph:

* w->w: writers of the same record, ordered by produced version;
* w->r: the writer of version v precedes every reader of v (or later);
* r->w: a reader of version v precedes the writer that produced the next
  version.

The execution was conflict-serializable iff this graph is acyclic —
the correctness oracle for all three executors in the integration and
property tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from .common import CommitLog


class HistoryRecorder:
    """Accumulates commit logs (cheap no-op when disabled)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.commits: list[CommitLog] = []

    def record(self, log: CommitLog) -> None:
        if self.enabled:
            self.commits.append(log)

    def __len__(self) -> int:
        return len(self.commits)

    # -- checking -------------------------------------------------------

    def precedence_edges(self) -> set[tuple[int, int]]:
        """Direct-conflict edges between committed transaction ids."""
        # per record: version -> writer txn, and list of (version, reader)
        writers: dict[Any, dict[int, int]] = defaultdict(dict)
        readers: dict[Any, list[tuple[int, int]]] = defaultdict(list)
        for log in self.commits:
            for rid, version in self.writes_collapsed(log):
                existing = writers[rid].get(version)
                if existing is not None and existing != log.txn_id:
                    raise ValueError(
                        f"two transactions ({existing}, {log.txn_id}) both "
                        f"claim to have produced version {version} of {rid}"
                        f" - lost update!")
                writers[rid][version] = log.txn_id
            for rid, version in log.reads:
                readers[rid].append((version, log.txn_id))

        edges: set[tuple[int, int]] = set()
        for rid, by_version in writers.items():
            ordered = sorted(by_version)
            # w->w edges in version order
            for v1, v2 in zip(ordered, ordered[1:]):
                a, b = by_version[v1], by_version[v2]
                if a != b:
                    edges.add((a, b))
            for read_version, reader in readers[rid]:
                # w->r: last writer at or before what the reader saw
                before = [v for v in ordered if v <= read_version]
                if before:
                    writer = by_version[before[-1]]
                    if writer != reader:
                        edges.add((writer, reader))
                # r->w: first writer strictly after what the reader saw
                after = [v for v in ordered if v > read_version]
                if after:
                    writer = by_version[after[0]]
                    if writer != reader:
                        edges.add((reader, writer))
        return edges

    @staticmethod
    def writes_collapsed(log: CommitLog) -> list[tuple[Any, int]]:
        """A txn updating a record twice keeps only its final version."""
        final: dict[Any, int] = {}
        for rid, version in log.writes:
            final[rid] = max(version, final.get(rid, -1))
        return list(final.items())

    def is_serializable(self) -> bool:
        return self.find_cycle() is None

    def find_cycle(self) -> list[int] | None:
        """A cycle in the precedence graph, or None if acyclic."""
        edges = self.precedence_edges()
        adjacency: dict[int, list[int]] = defaultdict(list)
        nodes: set[int] = set()
        for a, b in edges:
            adjacency[a].append(b)
            nodes.update((a, b))

        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in nodes}
        parent: dict[int, int] = {}

        for start in sorted(nodes):
            if color[start] != WHITE:
                continue
            stack = [(start, iter(adjacency[start]))]
            color[start] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(adjacency[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        # found a cycle: unwind it
                        cycle = [child, node]
                        cursor = node
                        while cursor != child:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None
