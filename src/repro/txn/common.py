"""Shared transaction types: requests, outcomes, buffered writes."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

_txn_counter = itertools.count(1)

TXN_ID_NAMESPACE_SPAN = 2 ** 40
"""Ids per :func:`seed_txn_ids` namespace — far beyond any run's count."""


def next_txn_id() -> int:
    """Globally unique transaction id (process-wide, deterministic)."""
    return next(_txn_counter)


def seed_txn_ids(namespace: int) -> None:
    """Restart the id counter inside a disjoint namespace.

    Transaction ids double as lock owners, so two *processes*
    coordinating transactions against the same logical database (the
    multiprocess backend's workers) must never mint the same id — a
    collision would let one transaction release or re-enter another's
    locks.  Each worker seeds its own namespace before driving load.
    """
    global _txn_counter
    _txn_counter = itertools.count(namespace * TXN_ID_NAMESPACE_SPAN + 1)


@dataclass(frozen=True)
class TxnRequest:
    """One transaction to execute: a procedure name plus its parameters."""

    proc: str
    params: Mapping[str, Any]
    home: int = 0
    """Server id of the coordinating execution engine."""


class AbortReason(enum.Enum):
    LOCK_CONFLICT = "lock_conflict"
    VALIDATION = "validation"      # OCC validation failure
    LOGICAL = "logical"            # a CHECK predicate failed
    READ_MISS = "read_miss"        # referenced record does not exist
    DUPLICATE_KEY = "duplicate_key"
    INNER_CONFLICT = "inner_conflict"  # inner host failed its local locks
    MIGRATED = "migrated"          # record moved mid-flight (retryable):
    # the read resolved against a placement epoch that a live migration
    # has since advanced; a retry re-resolves and finds the new home
    PEER_DOWN = "peer_down"        # a participant worker died mid-txn
    # (retryable): the mp runtime short-circuits verbs to dead workers;
    # retries succeed once the parent respawns the worker


class WriteKind(enum.Enum):
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"


@dataclass
class BufferedWrite:
    """A write evaluated at the coordinator, applied at commit time."""

    kind: WriteKind
    table: str
    key: Any
    values: dict[str, Any] | None = None


@dataclass
class Outcome:
    """The result of one transaction attempt."""

    txn_id: int
    proc: str
    committed: bool
    reason: AbortReason | None = None
    start: float = 0.0
    end: float = 0.0
    partitions: frozenset[int] = frozenset()
    inner_host: int | None = None
    used_two_region: bool = False
    read_set: tuple = ()
    """Records actually read, as ``(table, key)`` pairs.  Populated only
    when the executor's ``record_footprints`` flag is on (adaptive
    placement samples committed footprints); empty otherwise so the
    default path carries no extra weight."""

    write_set: tuple = ()
    """Records actually written; same gating as :attr:`read_set`."""

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def distributed(self) -> bool:
        return len(self.partitions) > 1

    def __repr__(self) -> str:
        status = "commit" if self.committed else f"abort({self.reason.value})"
        return f"Outcome(t{self.txn_id} {self.proc} {status})"


@dataclass
class CommitLog:
    """Read/write versions of one committed transaction (for the
    serializability checker)."""

    txn_id: int
    reads: list[tuple[tuple[str, Any], int]] = field(default_factory=list)
    writes: list[tuple[tuple[str, Any], int]] = field(default_factory=list)
