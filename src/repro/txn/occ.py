"""Optimistic concurrency control (MaaT-flavoured) executor.

The paper's OCC baseline is MaaT [19].  We implement the behaviour the
evaluation depends on — reads proceed without locks, and conflicts only
surface at a commit-time validation, so conflicting transactions waste
their entire execution before aborting — using Silo-style backward
validation:

1. **Read phase**: dependency-layered reads with *no* locks, recording
   the version of every record read; writes buffered at the coordinator.
2. **Validation phase**: NO_WAIT-lock the write set (insert keys
   included), then verify that (a) every written record still carries
   the version we read and (b) every read-only record is both unchanged
   and not locked by a concurrent validator.  Any failure aborts.
3. **Install phase**: replicate, apply buffered writes, release.

MaaT's dynamic timestamp ranges shave some aborts off this scheme but
keep its wasted-work failure mode; see DESIGN.md (Substitutions).
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..sim import Compute
from ..sim.codec import DispatchContext, OpDescriptor, op_handler
from ..storage import LockMode
from .commit_fsm import CommitFsm
from .common import AbortReason, TxnRequest, WriteKind
from .database import Database
from .executor import BaseExecutor, TxnState


class OccExecutor(BaseExecutor):
    """Optimistic executor with commit-time validation."""

    name = "occ"

    def execute(self, request: TxnRequest, trace: int = 0,
                attempt: int = 0) -> Generator:
        state = self.new_state(request, trace, attempt)
        fsm = CommitFsm(self, state)
        ok = yield from self.lock_read_phase(state, locking=False)
        if not ok:
            # read phase holds no locks: aborting costs nothing extra
            fsm.mark_aborted()
            return self.finish(state)
        writes = self.evaluate_writes(state)
        t0 = self.span_start(state)
        ok = yield from self._validate(state, writes)
        if t0 is not None:
            self.emit_span(state, "validate", t0, ok)
        if not ok:
            # validation precedes the prepare: nothing was logged or
            # shipped, so this abort needs no decision record either
            yield from fsm.abort()
            return self.finish(state)
        ok = yield from fsm.prepare(writes)
        if not ok:
            yield from fsm.abort()
            return self.finish(state)
        yield from fsm.commit()
        return self.finish(state)

    # -- validation -------------------------------------------------------

    def _validation_cpu(self, state: TxnState, partitions) -> float:
        home = state.request.home
        cost = 0.0
        for pid in partitions:
            per_op = (self.cfg.cpu_local_op_us if pid == home
                      else self.cfg.cpu_op_us)
            cost += per_op
        return cost

    def _validate(self, state: TxnState, writes) -> Generator:
        """Lock the write set, then check the read set is still current."""
        read_versions: dict[tuple[str, Any], int] = {}
        for rid, version in state.reads:
            read_versions[rid] = version

        lock_items: list[tuple[int, Callable[[], str]]] = []
        written: set[tuple[str, Any]] = set()
        for pid, partition_writes in writes.items():
            state.touched.add(pid)
            for write in partition_writes:
                rid = (write.table, write.key)
                written.add(rid)
                expected = read_versions.get(rid)
                lock_items.append((pid, _validate_write_op(
                    self.db, pid, write.table, write.key,
                    state.txn_id, expected,
                    is_insert=write.kind is WriteKind.INSERT)))
        if lock_items:
            yield Compute(self.cfg.cpu_dispatch_us
                          + self._validation_cpu(state, writes.keys()))
            results = yield from self.network_round(lock_items,
                                                    kind="validate_write")
            for result in results:
                if result != "ok":
                    state.abort_reason = AbortReason.VALIDATION
                    return False

        check_items: list[tuple[int, Callable[[], str]]] = []
        for rid, version in read_versions.items():
            if rid in written:
                continue  # verified under its own lock above
            table, key = rid
            pid = self.db.partition_of(table, key,
                                       reader=state.request.home)
            check_items.append((pid, _validate_read_op(
                self.db, pid, table, key, state.txn_id, version)))
        if check_items:
            yield Compute(self.cfg.cpu_dispatch_us
                          + self.round_cpu((pid for pid, _ in check_items),
                                           home=state.request.home,
                                           local_cost=self.cfg.cpu_op_us))
            results = yield from self.network_round(check_items,
                                                    kind="validate_read")
            for result in results:
                if result != "ok":
                    state.abort_reason = AbortReason.VALIDATION
                    return False
        return True


def _validate_write_op(db: Database, pid: int, table: str, key: Any,
                       txn_id: int, expected_version: int | None,
                       is_insert: bool) -> OpDescriptor:
    return OpDescriptor("validate_write", pid, table, key,
                        (txn_id, expected_version,
                         is_insert)).bind(db.dispatch_context)


@op_handler("validate_write")
def _do_validate_write(ctx: DispatchContext, d: OpDescriptor) -> str:
    store = ctx.store_of(d.partition)
    txn_id, expected_version, is_insert = d.args
    if not store.try_lock(d.table, d.key, LockMode.EXCLUSIVE, txn_id):
        return "conflict"
    current = store.version_of(d.table, d.key)
    if is_insert:
        return "ok" if current is None else "duplicate"
    if current != expected_version:
        return "stale"
    return "ok"


def _validate_read_op(db: Database, pid: int, table: str, key: Any,
                      txn_id: int, expected_version: int) -> OpDescriptor:
    return OpDescriptor("validate_read", pid, table, key,
                        (txn_id, expected_version)).bind(db.dispatch_context)


@op_handler("validate_read")
def _do_validate_read(ctx: DispatchContext, d: OpDescriptor) -> str:
    store = ctx.store_of(d.partition)
    txn_id, expected_version = d.args
    if store.version_of(d.table, d.key) != expected_version:
        return "stale"
    lock = store.table(d.table).lock_for(d.key)
    if not lock.is_free() and lock.held_by(txn_id) is None:
        return "locked"  # a concurrent validator owns it
    return "ok"
