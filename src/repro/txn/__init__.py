"""Transaction processing: database wiring, 2PL+2PC and OCC baselines."""

from .common import (AbortReason, BufferedWrite, CommitLog, Outcome,
                     TxnRequest, WriteKind, next_txn_id)
from .database import Database
from .executor import BaseExecutor, ExecConfig, TxnState
from .history import HistoryRecorder
from .occ import OccExecutor
from .twopl import TwoPLExecutor

__all__ = [
    "AbortReason",
    "BaseExecutor",
    "BufferedWrite",
    "CommitLog",
    "Database",
    "ExecConfig",
    "HistoryRecorder",
    "OccExecutor",
    "Outcome",
    "TwoPLExecutor",
    "TxnRequest",
    "TxnState",
    "WriteKind",
    "next_txn_id",
]
