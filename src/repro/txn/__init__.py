"""Transaction processing: database wiring, 2PL+2PC and OCC baselines."""

from .commit_fsm import (CommitFsm, CommitTable, InvalidTransition,
                         PreparedEntry, SimulatedCrash, TxnPhase,
                         recover_database, recovery_program,
                         resolve_in_doubt_local)
from .common import (AbortReason, BufferedWrite, CommitLog, Outcome,
                     TxnRequest, WriteKind, next_txn_id)
from .database import Database
from .executor import BaseExecutor, ExecConfig, TxnState
from .history import HistoryRecorder
from .occ import OccExecutor
from .twopl import TwoPLExecutor

__all__ = [
    "AbortReason",
    "BaseExecutor",
    "BufferedWrite",
    "CommitFsm",
    "CommitLog",
    "CommitTable",
    "Database",
    "ExecConfig",
    "HistoryRecorder",
    "InvalidTransition",
    "OccExecutor",
    "Outcome",
    "PreparedEntry",
    "SimulatedCrash",
    "TwoPLExecutor",
    "TxnPhase",
    "TxnRequest",
    "TxnState",
    "WriteKind",
    "next_txn_id",
    "recover_database",
    "recovery_program",
    "resolve_in_doubt_local",
]
