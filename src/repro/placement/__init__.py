"""Online adaptive repartitioning: telemetry -> controller -> migration.

Chiller's partitioner (:mod:`repro.core.partitioner`) runs *offline*
over a sampled workload trace, so its minimized-contention property
decays the moment traffic drifts.  This package closes the loop while
the system serves load:

* :class:`AccessTelemetry` samples committed transactions' actual
  read/write sets per execution engine (mergeable and picklable, like
  ``SchedulerStats``), maintaining an observed co-access window.
* :class:`PlacementController` periodically re-runs the contention-
  aware star-graph cut over the observed window, aligns the cut's
  labels with the live layout, diffs it against the current
  placements, and emits a bounded :class:`MigrationPlan` (the top-K
  highest-gain record moves per epoch).
* :class:`MigrationExecutor` applies each move as an ordinary locking
  transaction through the existing txn layer — lock at source, ship
  the value (over the wire codec on the aio/mp backends), install at
  the destination, flip an epoch-versioned routing entry everywhere,
  then delete at the source — so there is never a stop-the-world
  pause; in-flight transactions that raced a move retry with a typed
  MIGRATED abort and re-resolve against the new epoch.

Wired through ``RunConfig(placement=...)`` / ``--placement
static|adaptive`` in the bench harness; ``static`` (the default) keeps
every path bit-identical to the pre-placement behavior.
"""

from .controller import (PLACEMENTS, MigrationPlan, PlacementController,
                         PlacementSpec, PlannedMove, PlacementStats,
                         as_placement_spec)
from .migration import (MigrationExecutor, controller_loop,
                        ensure_adaptive_scheme, install_flip_handler,
                        lease_controller_loop)
from .telemetry import AccessTelemetry, TelemetryWindow

__all__ = [
    "AccessTelemetry",
    "MigrationExecutor",
    "MigrationPlan",
    "PLACEMENTS",
    "PlacementController",
    "PlacementSpec",
    "PlacementStats",
    "PlannedMove",
    "TelemetryWindow",
    "as_placement_spec",
    "controller_loop",
    "ensure_adaptive_scheme",
    "install_flip_handler",
    "lease_controller_loop",
]
