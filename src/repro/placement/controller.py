"""The placement controller: observed window -> bounded migration plan.

Every epoch the controller re-runs the contention-aware partitioning
pipeline (:func:`~repro.core.partitioner.partition_workload`, the same
star-graph min-cut the offline trainer uses) over the telemetry
window, then turns the cut into *moves*:

1. **Label alignment.**  A graph cut's partition labels are arbitrary
   — label 2 of this epoch's cut has nothing to do with cluster
   partition 2.  The controller aligns labels to cluster partitions by
   greedy maximum-overlap matching (overlap weighted by access counts),
   so a cut that already matches the live layout produces *zero* moves
   instead of churning every record through a relabeling.
2. **Diff + gain ranking.**  Records whose aligned proposal differs
   from their live placement become move candidates — but only if
   their observed transactions actually *span* partitions today
   (``min_split_fraction``): a co-located group is never churned just
   because a fresh cut would balance it elsewhere.  Candidates are
   scored by ``split co-appearances x (1 + normalized contention
   likelihood)`` — the hot, contended records whose transactions pay
   for distribution move first.
3. **Budgeting.**  Only the top ``max_moves_per_epoch`` candidates
   above ``min_gain`` survive into the :class:`MigrationPlan`; the
   migration executor applies them one locking transaction at a time,
   so an epoch's disruption is strictly bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.contention import normalize
from ..core.partitioner import ChillerPartitionerConfig, partition_workload
from ..storage.record import RecordId
from .telemetry import TelemetryWindow

PLACEMENTS = ("static", "adaptive")
"""Placement policies a run can select (``RunConfig.placement``)."""


@dataclass(frozen=True)
class PlacementSpec:
    """Picklable recipe for a run's placement policy.

    This is what ``RunConfig.placement`` holds and what multiprocess
    workers receive; live controllers/telemetry are built per process
    from it (they hold engine state and never cross a boundary).
    """

    kind: str = "static"
    epoch_us: float = 1_500.0
    """Re-planning period: simulated microseconds on the sim backend,
    wall-clock microseconds on aio/mp (both via the Sleep effect)."""

    max_moves_per_epoch: int = 16
    """The migration budget: top-K highest-gain moves per epoch."""

    min_gain: float = 3.0
    """Minimum move score (split co-appearances x (1 + likelihood));
    filters records observed once or twice — noise, not drift."""

    min_split_fraction: float = 0.5
    """A record only becomes a move candidate when at least this
    fraction of its sampled transactions span multiple partitions
    under the *current* placement.  This is the anti-churn rule: a
    fresh min-cut is free to re-balance co-located groups, but moving
    them wins no locality — only records whose traffic actually pays
    for distribution are worth a migration."""

    plan_sample_cap: int = 256
    """Most-recent samples fed into one re-plan.  The re-plan runs on
    the serving path (the controller's engine), so its Python cost
    must stay bounded no matter how fast commits arrive."""

    plan_record_cap: int = 1_024
    """Top records (by window access count) the re-plan's star graph
    may contain; colder records are pruned from the sampled footprints
    first.  Records too cold to clear this bar were never migration
    candidates anyway (min_gain would reject them) — this is the same
    philosophy as the paper's hot-record lookup table, applied to the
    planner's own cost: TPC-C-sized footprints otherwise grow the cut
    graph to hundreds of thousands of edges per epoch."""

    min_window_commits: int = 16
    """Don't re-plan on windows with fewer observed commits."""

    lock_window_us: float = 10.0
    eps: float = 0.15
    hot_threshold: float = 0.02
    sample_every: int = 1
    max_samples: int = 512
    controller_home: int = 0
    """Engine that runs the controller loop (single-process backends),
    or that holds the *election lease cell* (mp backend).  Telemetry is
    engine-local (like the schedulers); the controller observes the
    engines of its own worker process and flips routing cluster-wide."""

    lease_ttl_us: float = 5_000.0
    """Controller-lease time-to-live on the mp backend.  Every worker
    runs a candidate loop; whoever holds the lease (granted by the
    ``lease_acquire`` verb against ``controller_home``'s server) plans
    and migrates that epoch.  A holder that stops renewing — its worker
    process died — loses the lease once the TTL lapses and a surviving
    candidate takes over (a *controller failover*)."""

    plan_cpu_us: float = 25.0
    """Modeled CPU charged to the controller's engine per re-plan."""

    flip_cpu_us: float = 0.5
    """Modeled CPU a server spends applying one routing flip."""

    seed: int = 101

    @property
    def adaptive(self) -> bool:
        return self.kind == "adaptive"


def as_placement_spec(placement: "PlacementSpec | str | None",
                      ) -> PlacementSpec:
    """Normalize ``RunConfig.placement`` (None, a kind name, or a full
    spec) into a :class:`PlacementSpec`."""
    if placement is None:
        return PlacementSpec(kind="static")
    if isinstance(placement, str):
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r} "
                             f"(expected one of {PLACEMENTS})")
        return PlacementSpec(kind=placement)
    return placement


@dataclass(frozen=True)
class PlannedMove:
    """One record move: ship (table, key) from ``src`` to ``dst``."""

    table: str
    key: object
    src: int
    dst: int
    gain: float


@dataclass(frozen=True)
class MigrationPlan:
    """One epoch's bounded move budget."""

    epoch: int
    moves: tuple[PlannedMove, ...]

    def __len__(self) -> int:
        return len(self.moves)


@dataclass
class PlacementStats:
    """Adaptive-placement counters, surfaced through ``Metrics``.

    Picklable and mergeable like ``SchedulerStats``: multiprocess
    workers ship theirs back to the parent, which folds them.
    """

    placement: str = "static"
    epochs: int = 0
    plans: int = 0
    """Epochs that actually re-ran the partitioner (enough commits)."""

    commits_observed: int = 0
    moves_planned: int = 0
    moves_applied: int = 0
    moves_conflicted: int = 0
    """Moves skipped because the record was locked (NO_WAIT: the
    migration never waits on live transactions)."""

    moves_missing: int = 0
    """Moves skipped because the record vanished before the lock."""

    flips_applied: int = 0
    """Routing-entry flips applied on this process's servers."""

    last_epoch: int = 0

    def merge_from(self, other: "PlacementStats") -> None:
        if other.placement != "static":
            self.placement = other.placement
        self.epochs += other.epochs
        self.plans += other.plans
        self.commits_observed += other.commits_observed
        self.moves_planned += other.moves_planned
        self.moves_applied += other.moves_applied
        self.moves_conflicted += other.moves_conflicted
        self.moves_missing += other.moves_missing
        self.flips_applied += other.flips_applied
        self.last_epoch = max(self.last_epoch, other.last_epoch)

    @classmethod
    def merged(cls, parts: list["PlacementStats"]) -> "PlacementStats":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total

    def timeline_snapshot(self) -> dict[str, float]:
        """Cumulative counters for the live metrics timeline."""
        return {"placement_epochs": self.epochs,
                "placement_plans": self.plans,
                "moves_applied": self.moves_applied,
                "moves_conflicted": self.moves_conflicted,
                "flips_applied": self.flips_applied}

    def summary(self) -> dict:
        """Flat report fields for ``RunResult.perf_summary()``."""
        return {
            "placement": self.placement,
            "epochs": self.epochs,
            "plans": self.plans,
            "commits_observed": self.commits_observed,
            "moves_planned": self.moves_planned,
            "moves_applied": self.moves_applied,
            "moves_conflicted": self.moves_conflicted,
            "moves_missing": self.moves_missing,
            "flips_applied": self.flips_applied,
            "last_epoch": self.last_epoch,
        }


class PlacementController:
    """Turns telemetry windows into bounded migration plans."""

    def __init__(self, spec: PlacementSpec):
        self.spec = spec

    def plan(self, window: TelemetryWindow, n_partitions: int,
             placement_of, epoch: int, movable=None) -> MigrationPlan:
        """Re-partition the observed window; diff against the live
        layout (``placement_of(table, key) -> partition``).

        ``movable(table) -> bool`` excludes tables whose records must
        never migrate (replicated tables resolve to the *reader*, so
        they have no placement to move — deleting a copy would be data
        loss, not migration).
        """
        spec = self.spec
        if (window.commits_observed < spec.min_window_commits
                or not window.samples):
            return MigrationPlan(epoch, ())
        samples = _bounded_samples(window, spec.plan_sample_cap,
                                   spec.plan_record_cap)
        if not samples:
            return MigrationPlan(epoch, ())
        likelihoods = window.likelihoods(spec.lock_window_us)
        # one fixed seed across epochs: a re-observed group keeps
        # landing on the same cut side, so partially-applied plans
        # converge instead of bouncing between equally-balanced cuts
        partitioning = partition_workload(
            samples, likelihoods, n_partitions,
            ChillerPartitionerConfig(eps=spec.eps,
                                     hot_threshold=spec.hot_threshold,
                                     seed=spec.seed))
        proposal = partitioning.record_assignment
        current = {rid: placement_of(rid[0], rid[1]) for rid in proposal}
        relabel = _align_labels(proposal, current, window, n_partitions)
        split, appearances = _split_counts(samples, current)
        normalized = normalize(likelihoods)
        candidates = []
        for rid, label in proposal.items():
            if movable is not None and not movable(rid[0]):
                continue
            dst = relabel[label]
            src = current[rid]
            if dst == src:
                continue
            seen = appearances.get(rid, 0)
            split_count = split.get(rid, 0)
            if (seen == 0
                    or split_count < spec.min_split_fraction * seen):
                continue  # its traffic is already co-located: don't churn
            gain = split_count * (1.0 + normalized.get(rid, 0.0))
            if gain >= spec.min_gain:
                candidates.append(PlannedMove(rid[0], rid[1], src, dst,
                                              gain))
        candidates.sort(key=lambda m: (-m.gain, m.table, str(m.key)))
        return MigrationPlan(epoch,
                             tuple(candidates[:spec.max_moves_per_epoch]))


def _bounded_samples(window: TelemetryWindow, sample_cap: int,
                     record_cap: int) -> list:
    """The planner's bounded view of the window: the most recent
    ``sample_cap`` footprints, pruned to the ``record_cap`` hottest
    records (footprints that keep fewer than two records carry no
    co-access signal and are dropped)."""
    from ..core.stats import TxnSample
    samples = list(window.samples[-sample_cap:])
    n_records = len(window.read_counts) + sum(
        1 for rid in window.write_counts if rid not in window.read_counts)
    if n_records <= record_cap:
        return samples
    by_heat = sorted(window.records(),
                     key=lambda rid: (-window.accesses(rid), rid))
    keep = set(by_heat[:record_cap])
    bounded = []
    for sample in samples:
        reads = tuple(rid for rid in sample.reads if rid in keep)
        writes = tuple(rid for rid in sample.writes if rid in keep)
        if len(reads) + len(writes) >= 2:
            bounded.append(TxnSample(sample.proc, reads, writes))
    return bounded


def _split_counts(samples, current: dict[RecordId, int],
                  ) -> tuple[dict[RecordId, int], dict[RecordId, int]]:
    """Per record: sampled transactions it appeared in that spanned
    multiple partitions under the current placement, and total
    appearances.  Records outside ``current`` (pruned from the plan)
    contribute nothing."""
    split: dict[RecordId, int] = {}
    appearances: dict[RecordId, int] = {}
    for sample in samples:
        rids = [rid for rid in sample.records() if rid in current]
        first = None
        distributed = False
        for rid in rids:
            partition = current[rid]
            if first is None:
                first = partition
            elif partition != first:
                distributed = True
                break
        for rid in rids:
            appearances[rid] = appearances.get(rid, 0) + 1
            if distributed:
                split[rid] = split.get(rid, 0) + 1
    return split, appearances


def _align_labels(proposal: dict[RecordId, int],
                  current: dict[RecordId, int],
                  window: TelemetryWindow,
                  n_partitions: int) -> dict[int, int]:
    """Map cut labels to cluster partitions by greedy max overlap.

    Overlap is weighted by access counts, so the mapping preserves the
    placement of the traffic that matters; a cut identical to the live
    layout maps to the identity and yields zero moves.
    """
    overlap: dict[tuple[int, int], float] = {}
    for rid, label in proposal.items():
        weight = float(window.accesses(rid)) or 1.0
        key = (label, current[rid])
        overlap[key] = overlap.get(key, 0.0) + weight
    pairs = sorted(overlap.items(),
                   key=lambda item: (-item[1], item[0]))
    relabel: dict[int, int] = {}
    taken: set[int] = set()
    for (label, partition), _weight in pairs:
        if label in relabel or partition in taken:
            continue
        relabel[label] = partition
        taken.add(partition)
    free = [p for p in range(n_partitions) if p not in taken]
    for label in range(n_partitions):
        if label not in relabel:
            relabel[label] = free.pop(0) if free else label
    return relabel
