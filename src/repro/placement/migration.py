"""Live record migration: moves as ordinary locking transactions.

A move never stops the world.  It runs as a small NO_WAIT transaction
on the controller's engine, built from the same op-descriptor verbs
the transaction layer ships (so on the aio/mp backends the record's
value crosses a real serialization boundary through the wire codec):

1. **Lock at source** — an exclusive ``lock_read`` verb.  A conflict
   means a live transaction owns the record; the move is skipped this
   epoch (migration never blocks the workload).
2. **Install at destination** — a ``migrate_install`` verb ships the
   value; the destination's replicas receive the copy through the
   ordinary ``replica_apply`` path in the same parallel round.
3. **Flip routing** — the epoch-versioned catalog entry is updated
   locally and broadcast to every other server as a ``placement_flip``
   RPC (on the multiprocess backend each worker applies it to its own
   catalog copy).  From this instant new transactions resolve the new
   home; old-epoch in-flight transactions that race the move either
   hit the migration's lock (LOCK_CONFLICT, retried) or miss the
   deleted source copy (typed MIGRATED abort, retried) — both retries
   re-resolve against the new epoch.
4. **Delete at source** — a ``migrate_remove`` verb removes the old
   copy and releases the migration's lock; the source's replicas drop
   their copies through ``replica_apply`` deletes.

Because the exclusive lock is held from step 1 through step 4, no
committed write can land on the source copy after its value was
shipped — the "never lose a committed write" property the conformance
suite asserts.
"""

from __future__ import annotations

from typing import Generator

from ..replication import ReplicaWrite
from ..sim import All, Compute, OneSided, Rpc, Sleep
from ..sim.codec import DispatchContext, OpDescriptor, op_handler
from ..storage import LockMode
from ..txn.common import next_txn_id
from .controller import (MigrationPlan, PlacementController, PlacementSpec,
                         PlacementStats)
from .telemetry import AccessTelemetry, TelemetryWindow

RPC_FLIP = "placement_flip"


# -- server-side verbs --------------------------------------------------------

@op_handler("migrate_install")
def _do_migrate_install(ctx: DispatchContext, d: OpDescriptor) -> str:
    """Install a shipped record value at its new home partition."""
    store = ctx.store_of(d.partition)
    (fields,) = d.args
    if not store.insert(d.table, d.key, fields):
        # re-migration of a key that bounced back: overwrite in place
        store.write(d.table, d.key, fields)
    return "ok"


@op_handler("migrate_remove")
def _do_migrate_remove(ctx: DispatchContext, d: OpDescriptor) -> str:
    """Drop the source copy and release the migration's lock."""
    store = ctx.store_of(d.partition)
    (txn_id,) = d.args
    store.delete(d.table, d.key)
    store.release_all(txn_id)
    return "ok"


# -- routing flips ------------------------------------------------------------

def ensure_adaptive_scheme(db) -> None:
    """Give ``db``'s catalog an epoch-versioned scheme if it lacks one.

    Wraps any static scheme in a live
    :class:`~repro.core.lookup.EpochLookupScheme` overlay (an empty hot
    table over the existing layout), so adaptive placement works over
    hash, modulo, or trained lookup layouts alike.
    """
    if hasattr(db.catalog.scheme, "apply_move"):
        return
    from ..core.lookup import HotRecordTable
    db.catalog.scheme = HotRecordTable.empty().live_scheme(
        db.catalog.scheme)


def install_flip_handler(db, spec: PlacementSpec,
                         stats: PlacementStats) -> None:
    """Register the ``placement_flip`` RPC on this process's database.

    Every process of an adaptive run installs it (all servers must
    accept flips, only the controller's engine emits them); repeated
    installation on one database is a no-op.
    """
    if getattr(db, "_placement_flip_installed", False):
        return
    ensure_adaptive_scheme(db)

    def factory(server_id: int, src: int, body) -> Generator:
        return _apply_flip(db, spec, stats, body)

    db.register_rpc(RPC_FLIP, factory)
    db._placement_flip_installed = True


def _apply_flip(db, spec: PlacementSpec, stats: PlacementStats,
                body) -> Generator:
    table, key, dst, epoch = body
    yield Compute(spec.flip_cpu_us)
    db.catalog.scheme.apply_move(table, key, dst, epoch)
    stats.flips_applied += 1
    return "ok"


# -- the migration transaction ------------------------------------------------

class MigrationExecutor:
    """Applies planned moves from one engine, one locking txn each."""

    def __init__(self, db, home: int, spec: PlacementSpec,
                 stats: PlacementStats):
        self.db = db
        self.home = home
        self.spec = spec
        self.stats = stats

    def _op(self, kind: str, pid: int, table: str, key, args: tuple,
            ) -> OpDescriptor:
        return OpDescriptor(kind, pid, table, key,
                            args).bind(self.db.dispatch_context)

    def _replica_ships(self, pid: int, write: ReplicaWrite) -> list:
        if self.db.replicas is None:
            return []
        return [OneSided(rserver,
                         OpDescriptor("replica_apply", rserver,
                                      args=(pid, (write,))).bind(
                                          self.db.dispatch_context),
                         kind="replicate")
                for rserver in self.db.replicas.replica_servers(pid)]

    def migrate(self, table: str, key, dst: int,
                epoch: int) -> Generator:
        """One move as a locking transaction; returns True if applied."""
        tr = self.db.tracer
        if not tr.enabled:
            return (yield from self._migrate(table, key, dst, epoch))
        # background moves trace under their own ids (same per-home
        # sampled counter as requests)
        trace = tr.new_trace(self.home)
        t0 = self.db.cluster.sim.now
        applied = yield from self._migrate(table, key, dst, epoch)
        tr.span(trace, 0, 0, self.home, "migrate", t0,
                self.db.cluster.sim.now, "ok" if applied else "skipped")
        return applied

    def _migrate(self, table: str, key, dst: int,
                 epoch: int) -> Generator:
        db = self.db
        stats = self.stats
        if table in db.catalog.replicated_tables:
            # replicated tables resolve to the reader: there is no
            # placement to move, and deleting a copy would lose data
            return False
        src = db.partition_of(table, key, reader=self.home)
        if src == dst:
            return False
        txn_id = next_txn_id()
        result = yield OneSided(
            src, self._op("lock_read", src, table, key,
                          (LockMode.EXCLUSIVE, txn_id)),
            kind="migrate_lock")
        if result[0] == "conflict":
            stats.moves_conflicted += 1
            return False
        if result[0] == "missing":
            # the bucket lock was taken before the miss surfaced —
            # release it, then skip the move (record was deleted)
            stats.moves_missing += 1
            yield OneSided(src, self._op("release", src, None, None,
                                         (txn_id,)),
                           kind="migrate_remove")
            return False
        fields = result[1]
        install = [OneSided(dst, self._op("migrate_install", dst, table,
                                          key, (fields,)),
                            kind="migrate_install")]
        install += self._replica_ships(
            dst, ReplicaWrite("insert", table, key, fields))
        yield All(install)
        yield from self._flip_everywhere(table, key, dst, epoch)
        remove = [OneSided(src, self._op("migrate_remove", src, table,
                                         key, (txn_id,)),
                           kind="migrate_remove")]
        remove += self._replica_ships(
            src, ReplicaWrite("delete", table, key, None))
        yield All(remove)
        stats.moves_applied += 1
        return True

    def _flip_everywhere(self, table: str, key, dst: int,
                         epoch: int) -> Generator:
        """Local flip first (new local resolutions see it immediately),
        then broadcast; the move's delete waits for every ack."""
        yield Compute(self.spec.flip_cpu_us)
        self.db.catalog.scheme.apply_move(table, key, dst, epoch)
        self.stats.flips_applied += 1
        others = [server.id for server in self.db.cluster.servers
                  if server.id != self.home]
        if others:
            yield All([Rpc(server, (RPC_FLIP, (table, key, dst, epoch)))
                       for server in others])


# -- controller election (mp backend) -----------------------------------------

@op_handler("lease_acquire")
def _do_lease_acquire(ctx: DispatchContext, d: OpDescriptor) -> tuple:
    """Grant/renew the controller lease kept on this server.

    The cell is ``[holder, expires_at_us]``; a request is granted when
    the cell is vacant, already held by the requester (renewal), or the
    previous holder's lease has lapsed (its worker stopped renewing —
    it is dead).  Replies ``(status, previous_holder)`` so candidates
    can detect failovers without the cell having to survive the death
    of the very server that stores it.
    """
    holder, now_us, ttl_us = d.args
    cell = ctx.leases.get(d.partition)
    if cell is None:
        cell = ctx.leases[d.partition] = [None, float("-inf")]
    previous = cell[0]
    if previous is None or previous == holder or now_us >= cell[1]:
        cell[0] = holder
        cell[1] = now_us + ttl_us
        return ("granted", previous)
    return ("held", previous)


def _lease_acquire_op(db, pid: int, holder: int, now_us: float,
                      ttl_us: float) -> OpDescriptor:
    return OpDescriptor("lease_acquire", pid,
                        args=(holder, now_us,
                              ttl_us)).bind(db.dispatch_context)


# -- the controller loop ------------------------------------------------------

def _epoch_plan(db, spec: PlacementSpec, controller: PlacementController,
                migrator: MigrationExecutor, stats: PlacementStats,
                window: TelemetryWindow, horizon_us: float,
                now_fn) -> Generator:
    """One epoch's plan -> migrate tail (shared by both loops)."""
    yield Compute(spec.plan_cpu_us)
    epoch = db.placement_epoch() + 1
    replicated = db.catalog.replicated_tables
    plan: MigrationPlan = controller.plan(
        window, db.n_partitions,
        lambda t, k: db.partition_of(t, k, reader=migrator.home),
        epoch, movable=lambda table: table not in replicated)
    stats.plans += 1
    stats.moves_planned += len(plan)
    stats.last_epoch = epoch
    for move in plan.moves:
        if now_fn() >= horizon_us:
            return
        yield from migrator.migrate(move.table, move.key, move.dst,
                                    epoch)


def controller_loop(db, telemetry: dict[int, AccessTelemetry],
                    spec: PlacementSpec, controller: PlacementController,
                    migrator: MigrationExecutor, stats: PlacementStats,
                    horizon_us: float) -> Generator:
    """The per-epoch observe -> plan -> migrate loop (one coroutine,
    spawned on the controller's engine; runs until the horizon).

    Telemetry is drained from every engine this process drives — the
    whole cluster on sim/aio, this worker's share on mp.
    """
    now_fn = lambda: db.cluster.sim.now  # noqa: E731 - tiny closure
    while now_fn() < horizon_us:
        yield Sleep(spec.epoch_us)
        now = now_fn()
        stats.epochs += 1
        window = TelemetryWindow.merged(
            [t.drain(now) for t in telemetry.values()])
        stats.commits_observed += window.commits_observed
        if now >= horizon_us:
            return
        if window.commits_observed < spec.min_window_commits:
            continue
        yield from _epoch_plan(db, spec, controller, migrator, stats,
                               window, horizon_us, now_fn)


def lease_controller_loop(db, telemetry: dict[int, AccessTelemetry],
                          spec: PlacementSpec,
                          controller: PlacementController,
                          migrator: MigrationExecutor,
                          stats: PlacementStats,
                          horizon_us: float, cluster) -> Generator:
    """Leader-elected controller candidate (multiprocess backend).

    Every worker runs one of these instead of pinning the controller
    to whichever worker happens to own ``controller_home``: each epoch
    the candidate bids for the lease cell on ``controller_home``'s
    server, and only the holder plans and migrates.  When the holder's
    worker dies, its renewals stop — the TTL lapses (or the cell itself
    vanishes with the dead server and is recreated vacant by the
    respawn) and a surviving candidate acquires, counted as a
    controller failover in the recovery stats.  While the lease server
    is unreachable the epoch is skipped and bidding retries.
    """
    from ..sim.codec import PEER_DOWN
    lease_server = spec.controller_home
    me = cluster.worker_id
    last_known = None  # most recent holder any reply disclosed
    now_fn = lambda: db.cluster.sim.now  # noqa: E731 - tiny closure
    while now_fn() < horizon_us:
        yield Sleep(spec.epoch_us)
        now = now_fn()
        stats.epochs += 1
        window = TelemetryWindow.merged(
            [t.drain(now) for t in telemetry.values()])
        stats.commits_observed += window.commits_observed
        if now >= horizon_us:
            return
        reply = yield OneSided(
            lease_server,
            _lease_acquire_op(db, lease_server, me, now,
                              spec.lease_ttl_us),
            kind="placement_lease")
        if reply == PEER_DOWN or reply is None:
            continue  # lease server's worker is down: retry next epoch
        status, previous = reply
        if previous is not None:
            last_known = previous
        if status != "granted":
            continue
        if last_known is not None and last_known != me:
            db.recovery.controller_failovers += 1
        last_known = me
        if window.commits_observed < spec.min_window_commits:
            continue
        yield from _epoch_plan(db, spec, controller, migrator, stats,
                               window, horizon_us, now_fn)
