"""Runtime access telemetry: observed footprints per execution engine.

Where the offline :class:`~repro.core.stats.StatsService` consumes a
*training trace*, this collector samples what committed transactions
**actually touched** at run time (``Outcome.read_set`` /
``Outcome.write_set``, populated by the executor when its
``record_footprints`` flag is on).  Each engine owns one collector —
the same engine-local stance as the scheduling layer, which is what
lets the identical code run on the simulator, the asyncio loop, and
inside every multiprocess worker.  Collectors are picklable and
mergeable, so mp workers could ship them to the parent exactly like
``SchedulerStats``.

The controller drains a collector per epoch into a
:class:`TelemetryWindow` — a frozen snapshot of the window's co-access
samples and per-record access counts — and feeds the window to the
same star-graph pipeline the offline partitioner uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.contention import contention_likelihood
from ..core.stats import TxnSample
from ..storage.record import RecordId


@dataclass(frozen=True)
class TelemetryWindow:
    """One epoch's frozen observation: samples + access counts."""

    start_us: float
    end_us: float
    samples: tuple[TxnSample, ...]
    read_counts: dict[RecordId, int]
    write_counts: dict[RecordId, int]
    commits_observed: int

    @property
    def duration_us(self) -> float:
        return max(self.end_us - self.start_us, 1e-9)

    def accesses(self, rid: RecordId) -> int:
        return self.read_counts.get(rid, 0) + self.write_counts.get(rid, 0)

    def records(self) -> set[RecordId]:
        return set(self.read_counts) | set(self.write_counts)

    def likelihoods(self, lock_window_us: float) -> dict[RecordId, float]:
        """Per-record contention likelihoods from the observed window.

        Same Poisson model as the offline pipeline (Section 4.1):
        per-record access counts over the window duration give arrival
        rates per lock window, which the closed form converts to a
        conflict probability.  Counts here cover *every* committed
        transaction in the window (only the co-access samples are
        capped), so no sample-rate correction is needed.
        """
        scale = lock_window_us / self.duration_us
        return {rid: contention_likelihood(
                    self.write_counts.get(rid, 0) * scale,
                    self.read_counts.get(rid, 0) * scale)
                for rid in self.records()}

    @classmethod
    def merged(cls, parts: list["TelemetryWindow"]) -> "TelemetryWindow":
        """Fold the per-engine windows of one epoch into a global view."""
        if not parts:
            return cls(0.0, 0.0, (), {}, {}, 0)
        reads: dict[RecordId, int] = {}
        writes: dict[RecordId, int] = {}
        samples: list[TxnSample] = []
        commits = 0
        for part in parts:
            samples.extend(part.samples)
            commits += part.commits_observed
            for rid, count in part.read_counts.items():
                reads[rid] = reads.get(rid, 0) + count
            for rid, count in part.write_counts.items():
                writes[rid] = writes.get(rid, 0) + count
        return cls(min(p.start_us for p in parts),
                   max(p.end_us for p in parts),
                   tuple(samples), reads, writes, commits)


@dataclass
class AccessTelemetry:
    """One engine's rolling observation of committed footprints.

    ``sample_every`` thins the retained co-access samples (access
    *counts* still cover every commit); ``max_samples`` bounds the
    window's memory, keeping the most recent footprints — recency is
    the point of online re-partitioning.
    """

    sample_every: int = 1
    max_samples: int = 512
    samples: list = field(default_factory=list)
    read_counts: dict = field(default_factory=dict)
    write_counts: dict = field(default_factory=dict)
    commits_observed: int = 0
    commits_total: int = 0
    """Commits observed since construction (never reset by drains)."""

    window_start_us: float = 0.0

    def observe(self, outcome, now: float) -> None:
        """Record one committed transaction's actual footprint."""
        if not outcome.read_set and not outcome.write_set:
            return  # nothing statically attributable (or footprints off)
        self.commits_observed += 1
        self.commits_total += 1
        for rid in outcome.read_set:
            self.read_counts[rid] = self.read_counts.get(rid, 0) + 1
        for rid in outcome.write_set:
            self.write_counts[rid] = self.write_counts.get(rid, 0) + 1
        if (self.commits_observed - 1) % self.sample_every:
            return
        if len(self.samples) >= self.max_samples:
            del self.samples[0]
        self.samples.append(TxnSample(outcome.proc,
                                      tuple(outcome.read_set),
                                      tuple(outcome.write_set)))

    def drain(self, now: float) -> TelemetryWindow:
        """Snapshot and reset the current window (one per epoch)."""
        window = TelemetryWindow(
            start_us=self.window_start_us, end_us=now,
            samples=tuple(self.samples),
            read_counts=dict(self.read_counts),
            write_counts=dict(self.write_counts),
            commits_observed=self.commits_observed)
        self.samples.clear()
        self.read_counts.clear()
        self.write_counts.clear()
        self.commits_observed = 0
        self.window_start_us = now
        return window

    # -- mergeability (mp workers ship collectors like SchedulerStats) ----

    def merge_from(self, other: "AccessTelemetry") -> None:
        self.commits_observed += other.commits_observed
        self.commits_total += other.commits_total
        for rid, count in other.read_counts.items():
            self.read_counts[rid] = self.read_counts.get(rid, 0) + count
        for rid, count in other.write_counts.items():
            self.write_counts[rid] = self.write_counts.get(rid, 0) + count
        self.samples.extend(other.samples)
        if len(self.samples) > self.max_samples:
            del self.samples[:len(self.samples) - self.max_samples]

    @classmethod
    def merged(cls, parts: list["AccessTelemetry"]) -> "AccessTelemetry":
        total = cls()
        for part in parts:
            total.merge_from(part)
        return total
