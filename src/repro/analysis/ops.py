"""Operation IR for stored procedures.

Each operation of a stored procedure becomes one node of the dependency
graph (Fig. 4 of the paper).  Five kinds:

* ``READ``   — read a record, optionally taking a write lock up front
               (``read_with_wl`` in the paper) when a later UPDATE
               targets it.
* ``UPDATE`` — modify the record previously read by ``target``.
* ``INSERT`` — create a record (key may be a :class:`DerivedKey`).
* ``DELETE`` — remove a record previously read by ``target``.
* ``CHECK``  — evaluate a predicate over bound values; if it fails, the
               transaction logically aborts (the ``else abort`` branch
               of the paper's flight-booking example).

Operations declare *value dependencies* explicitly (or implicitly via
``target``); primary-key dependencies come from their key expressions.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Mapping

from ..storage.locks import LockMode
from .keys import DerivedKey, KeyExpr, ParamKey

Params = Mapping[str, Any]
SemanticFn = Callable[[Params, Mapping[str, Any], Any], Any]


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    CHECK = "check"


class OpSpec:
    """One operation template within a stored procedure."""

    __slots__ = ("name", "kind", "table", "key", "target", "lock",
                 "update_fn", "insert_fn", "predicate", "value_deps",
                 "foreach", "conditional")

    def __init__(self, name: str, kind: OpKind, *,
                 table: str | None = None,
                 key: KeyExpr | None = None,
                 target: str | None = None,
                 lock: LockMode | None = None,
                 update_fn: SemanticFn | None = None,
                 insert_fn: SemanticFn | None = None,
                 predicate: SemanticFn | None = None,
                 value_deps: tuple[str, ...] = (),
                 foreach: str | None = None,
                 conditional: bool = False):
        self.name = name
        self.kind = kind
        self.table = table
        self.key = key
        self.target = target
        self.lock = lock
        self.update_fn = update_fn
        self.insert_fn = insert_fn
        self.predicate = predicate
        self.value_deps = tuple(value_deps)
        self.foreach = foreach
        self.conditional = conditional

    # -- dependency extraction -------------------------------------------

    def pk_sources(self) -> tuple[str, ...]:
        """Ops whose values this op's key derives from (pk-deps)."""
        if self.key is not None:
            return self.key.sources
        return ()

    def all_value_deps(self) -> tuple[str, ...]:
        """Explicit value deps plus the implicit dep on ``target``."""
        deps = list(self.value_deps)
        if self.target is not None and self.target not in deps:
            deps.append(self.target)
        return tuple(deps)

    def accesses_record(self) -> bool:
        """Whether this op touches storage (CHECK does not)."""
        return self.kind is not OpKind.CHECK

    def is_write(self) -> bool:
        return self.kind in (OpKind.UPDATE, OpKind.INSERT, OpKind.DELETE)

    def __repr__(self) -> str:
        return f"OpSpec({self.name}:{self.kind.value})"


# -- readable constructors ------------------------------------------------

def read(name: str, table: str, key: KeyExpr, *,
         for_update: bool = False,
         value_deps: tuple[str, ...] = (),
         foreach: str | None = None) -> OpSpec:
    """A read; ``for_update=True`` takes the write lock up front."""
    return OpSpec(name, OpKind.READ, table=table, key=key,
                  lock=LockMode.EXCLUSIVE if for_update else LockMode.SHARED,
                  value_deps=value_deps, foreach=foreach)


def update(name: str, target: str, set_fn: SemanticFn, *,
           value_deps: tuple[str, ...] = (),
           foreach: str | None = None,
           conditional: bool = False) -> OpSpec:
    """Update the record read by ``target``; ``set_fn`` returns updates."""
    return OpSpec(name, OpKind.UPDATE, target=target, update_fn=set_fn,
                  lock=LockMode.EXCLUSIVE, value_deps=value_deps,
                  foreach=foreach, conditional=conditional)


def insert(name: str, table: str, key: KeyExpr, fields_fn: SemanticFn, *,
           value_deps: tuple[str, ...] = (),
           foreach: str | None = None,
           conditional: bool = False) -> OpSpec:
    """Insert a new record; the key is often a :class:`DerivedKey`."""
    return OpSpec(name, OpKind.INSERT, table=table, key=key,
                  insert_fn=fields_fn, lock=LockMode.EXCLUSIVE,
                  value_deps=value_deps, foreach=foreach,
                  conditional=conditional)


def delete(name: str, target: str, *,
           value_deps: tuple[str, ...] = (),
           foreach: str | None = None,
           conditional: bool = False) -> OpSpec:
    """Delete the record read by ``target``."""
    return OpSpec(name, OpKind.DELETE, target=target,
                  lock=LockMode.EXCLUSIVE, value_deps=value_deps,
                  foreach=foreach, conditional=conditional)


def check(name: str, deps: tuple[str, ...], predicate: SemanticFn, *,
          foreach: str | None = None) -> OpSpec:
    """Abort the transaction if ``predicate(params, ctx, item)`` is false."""
    return OpSpec(name, OpKind.CHECK, predicate=predicate, value_deps=deps,
                  foreach=foreach)
