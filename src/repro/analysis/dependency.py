"""Dependency graphs over stored-procedure operations (paper Section 3.2).

Nodes are the procedure's operations.  A **pk-dep** edge ``a -> b`` means
b's primary key is only known after a executes; pk-deps are the *only*
constraint on lock-acquisition order.  **v-dep** edges (new values known
only after a read) are tracked for completeness and for deferred
evaluation (outer-region phase 2), but do not restrict reordering —
exactly the distinction the paper draws.
"""

from __future__ import annotations

from typing import Iterable

from .ops import OpKind, OpSpec
from .procedures import StoredProcedure


class DependencyGraph:
    """Immutable dependency structure of one stored procedure."""

    def __init__(self, nodes: list[str],
                 pk_edges: Iterable[tuple[str, str]],
                 v_edges: Iterable[tuple[str, str]],
                 conditional: set[str] | None = None):
        self.nodes = list(nodes)
        node_set = set(self.nodes)
        self.pk_edges = sorted(set(pk_edges))
        self.v_edges = sorted(set(v_edges))
        self.conditional = set(conditional or ())
        for a, b in list(self.pk_edges) + list(self.v_edges):
            if a not in node_set or b not in node_set:
                raise ValueError(f"edge ({a!r}, {b!r}) references unknown op")
        self._pk_children: dict[str, list[str]] = {n: [] for n in self.nodes}
        self._pk_parents: dict[str, list[str]] = {n: [] for n in self.nodes}
        for a, b in self.pk_edges:
            self._pk_children[a].append(b)
            self._pk_parents[b].append(a)
        self._assert_acyclic()

    @classmethod
    def from_procedure(cls, proc: StoredProcedure) -> "DependencyGraph":
        """Static analysis: build the graph at registration time."""
        nodes = proc.op_names()
        pk_edges: list[tuple[str, str]] = []
        v_edges: list[tuple[str, str]] = []
        conditional: set[str] = set()
        for spec in proc.ops:
            for src in spec.pk_sources():
                pk_edges.append((src, spec.name))
            for src in spec.all_value_deps():
                v_edges.append((src, spec.name))
            if spec.conditional:
                conditional.add(spec.name)
        return cls(nodes, pk_edges, v_edges, conditional)

    # -- queries ---------------------------------------------------------

    def pk_children(self, name: str) -> list[str]:
        return list(self._pk_children[name])

    def pk_parents(self, name: str) -> list[str]:
        return list(self._pk_parents[name])

    def pk_descendants(self, name: str) -> set[str]:
        """All ops transitively pk-dependent on ``name``."""
        out: set[str] = set()
        stack = list(self._pk_children[name])
        while stack:
            node = stack.pop()
            if node not in out:
                out.add(node)
                stack.extend(self._pk_children[node])
        return out

    def has_pk_children(self, name: str) -> bool:
        return bool(self._pk_children[name])

    def is_legal_order(self, order: list[str]) -> bool:
        """True iff every pk-dep edge goes forward in ``order``."""
        if sorted(order) != sorted(self.nodes):
            return False
        position = {name: i for i, name in enumerate(order)}
        return all(position[a] < position[b] for a, b in self.pk_edges)

    def reorder_last(self, late: set[str]) -> list[str]:
        """A legal order placing ``late`` ops (and anything pk-dependent
        on them) as late as possible — the paper's "postpone hot locks".

        Ops not in the late set keep their original relative order, as do
        ops within the late set.
        """
        forced_late = set(late)
        for name in late:
            forced_late |= self.pk_descendants(name)
        early = [n for n in self.nodes if n not in forced_late]
        tail = [n for n in self.nodes if n in forced_late]
        order = early + tail
        assert self.is_legal_order(order), (
            "reorder_last produced an illegal order; pk-dep closure bug")
        return order

    def _assert_acyclic(self) -> None:
        indegree = {n: len(self._pk_parents[n]) for n in self.nodes}
        ready = [n for n, d in indegree.items() if d == 0]
        visited = 0
        while ready:
            node = ready.pop()
            visited += 1
            for child in self._pk_children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if visited != len(self.nodes):
            raise ValueError("pk-dependency graph contains a cycle")

    # -- presentation ------------------------------------------------------

    def to_dot(self) -> str:
        """GraphViz rendering (solid = pk-dep, dashed = v-dep, blue =
        conditional), mirroring Fig. 4's color coding."""
        lines = ["digraph deps {"]
        for node in self.nodes:
            color = ", color=blue" if node in self.conditional else ""
            lines.append(f'  "{node}" [shape=ellipse{color}];')
        for a, b in self.pk_edges:
            lines.append(f'  "{a}" -> "{b}" [style=solid];')
        for a, b in self.v_edges:
            if (a, b) not in set(self.pk_edges):
                lines.append(f'  "{a}" -> "{b}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"DependencyGraph({len(self.nodes)} ops, "
                f"{len(self.pk_edges)} pk-deps, {len(self.v_edges)} v-deps)")
