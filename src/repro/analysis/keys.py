"""Key expressions: how an operation's primary key is computed.

The distinction drives the whole static analysis (Section 3.2 of the
paper): a key computable from the transaction's inputs alone
(:class:`ParamKey`) imposes no ordering constraint, while a key derived
from the *value* of an earlier read (:class:`DerivedKey`) is a
**primary-key dependency (pk-dep)** — the read must execute first, and
this is what can block a record from entering the inner region.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

Params = Mapping[str, Any]
Ctx = Mapping[str, Any]


class KeyExpr:
    """Base class for key expressions."""

    __slots__ = ()

    @property
    def sources(self) -> tuple[str, ...]:
        """Names of operations this key pk-depends on (empty if none)."""
        return ()


class ParamKey(KeyExpr):
    """A key computable from transaction parameters (and foreach item)."""

    __slots__ = ("_fn",)

    def __init__(self, fn: str | Callable[[Params, Any], Any]):
        if isinstance(fn, str):
            name = fn
            self._fn = lambda params, item: params[name]
        else:
            self._fn = fn

    def resolve(self, params: Params, item: Any = None) -> Any:
        return self._fn(params, item)


class DerivedKey(KeyExpr):
    """A key known only after earlier reads produced their values.

    ``partition_hint`` optionally computes, from parameters alone, a key
    whose *placement* equals the derived record's placement (e.g. a
    TPC-C order id is unknown until the district row is read, but the
    order row provably lives with its warehouse).  The region planner
    uses the hint to reason about co-location before execution.
    """

    __slots__ = ("_sources", "_fn", "_hint")

    def __init__(self, sources: tuple[str, ...],
                 fn: Callable[[Params, Ctx, Any], Any],
                 partition_hint: Callable[[Params, Any], Any] | None = None):
        if not sources:
            raise ValueError("DerivedKey needs at least one source op; "
                             "use ParamKey otherwise")
        self._sources = tuple(sources)
        self._fn = fn
        self._hint = partition_hint

    @property
    def sources(self) -> tuple[str, ...]:
        return self._sources

    @property
    def has_partition_hint(self) -> bool:
        return self._hint is not None

    def resolve(self, params: Params, ctx: Ctx, item: Any = None) -> Any:
        """Compute the concrete key; requires all sources bound in ctx."""
        for source in self._sources:
            if source not in ctx:
                raise KeyError(
                    f"cannot resolve derived key: source {source!r} has "
                    f"not been read yet")
        return self._fn(params, ctx, item)

    def hint(self, params: Params, item: Any = None) -> Any:
        """Placement-equivalent key, or raise if no hint was declared."""
        if self._hint is None:
            raise LookupError("derived key has no partition hint")
        return self._hint(params, item)


def param_key(spec: str | Callable[[Params, Any], Any]) -> ParamKey:
    """Key from a named parameter, or a ``fn(params, item)`` callable."""
    return ParamKey(spec)


def derived_key(sources: tuple[str, ...],
                fn: Callable[[Params, Ctx, Any], Any],
                partition_hint: Callable[[Params, Any], Any] | None = None,
                ) -> DerivedKey:
    """Key derived from earlier reads (creates pk-dep edges)."""
    return DerivedKey(sources, fn, partition_hint)
