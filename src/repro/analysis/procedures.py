"""Stored procedures: templates, instantiation, and semantic evaluation.

A :class:`StoredProcedure` is an ordered list of :class:`~repro.analysis.ops.OpSpec`
templates.  Procedures are *registered* once (static analysis builds the
dependency graph then, as in Section 3.2) and *instantiated* per
transaction: ``foreach`` templates expand into one :class:`OpInstance`
per element of a list-valued parameter (TPC-C order lines, Instacart
basket items).

Execution engines never interpret lambdas themselves; they call the
evaluation helpers here (:meth:`OpInstance.placement`,
:meth:`OpInstance.concrete_key`, :meth:`OpInstance.run_update`, ...) so
that all executors share identical transaction semantics.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..storage.locks import LockMode
from .keys import DerivedKey, ParamKey
from .ops import OpKind, OpSpec

Params = Mapping[str, Any]


class _CtxView(Mapping[str, Any]):
    """Read-only view of a ctx dict that rewrites template op names to
    the instance names of the current foreach index."""

    __slots__ = ("_ctx", "_alias")

    def __init__(self, ctx: Mapping[str, Any], alias: Mapping[str, str]):
        self._ctx = ctx
        self._alias = alias

    def __getitem__(self, name: str) -> Any:
        return self._ctx[self._alias.get(name, name)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._ctx)

    def __len__(self) -> int:
        return len(self._ctx)

    def __contains__(self, name: object) -> bool:
        return self._alias.get(name, name) in self._ctx


class Placement:
    """Where an op's record lives, as knowable *before* execution.

    ``key`` is the concrete primary key when it is computable from the
    transaction parameters, or a placement-equivalent hint otherwise.
    ``exact`` distinguishes the two.  ``key is None`` means the location
    is genuinely unknown until run time (an unhinted derived key).
    """

    __slots__ = ("table", "key", "exact")

    def __init__(self, table: str, key: Any, exact: bool):
        self.table = table
        self.key = key
        self.exact = exact

    def known(self) -> bool:
        return self.key is not None

    def __repr__(self) -> str:
        marker = "" if self.exact else "~"
        return f"Placement({self.table}:{marker}{self.key!r})"


class OpInstance:
    """A concrete operation of one transaction."""

    __slots__ = ("spec", "proc", "name", "item", "index", "_alias")

    def __init__(self, spec: OpSpec, proc: "StoredProcedure",
                 item: Any = None, index: int | None = None):
        self.spec = spec
        self.proc = proc
        self.item = item
        self.index = index
        self.name = spec.name if index is None else f"{spec.name}[{index}]"
        self._alias = proc._alias_map(spec, index)

    # -- identity / dependencies ------------------------------------------

    def dep_instance_names(self) -> list[str]:
        """Instance names of all deps (pk + value) of this instance."""
        deps = set(self.spec.pk_sources()) | set(self.spec.all_value_deps())
        return [self._alias.get(d, d) for d in deps]

    def pk_source_instances(self) -> list[str]:
        return [self._alias.get(d, d) for d in self.spec.pk_sources()]

    def target_instance(self) -> str | None:
        if self.spec.target is None:
            return None
        return self._alias.get(self.spec.target, self.spec.target)

    # -- placement (pre-execution knowledge) -------------------------------

    def placement(self, params: Params) -> Placement | None:
        """Best pre-execution knowledge of this op's record location."""
        spec = self._record_spec()
        if spec is None:  # CHECK: touches no record
            return None
        assert spec.table is not None and spec.key is not None
        if isinstance(spec.key, ParamKey):
            return Placement(spec.table, spec.key.resolve(params, self.item),
                             exact=True)
        assert isinstance(spec.key, DerivedKey)
        if spec.key.has_partition_hint:
            return Placement(spec.table, spec.key.hint(params, self.item),
                             exact=False)
        return Placement(spec.table, None, exact=False)

    def lock_mode(self) -> LockMode:
        if self.spec.lock is None:
            raise ValueError(f"{self.name} has no lock mode")
        return self.spec.lock

    # -- execution-time evaluation ------------------------------------------

    def concrete_key(self, params: Params, ctx: Mapping[str, Any]) -> Any:
        """Resolve the actual primary key (requires pk-deps bound)."""
        spec = self._record_spec()
        if spec is None:
            raise TypeError(f"{self.name} does not access a record")
        if isinstance(spec.key, ParamKey):
            return spec.key.resolve(params, self.item)
        assert isinstance(spec.key, DerivedKey)
        return spec.key.resolve(params, _CtxView(ctx, self._alias),
                                self.item)

    def run_update(self, params: Params, ctx: Mapping[str, Any]
                   ) -> dict[str, Any]:
        assert self.spec.update_fn is not None
        return self.spec.update_fn(params, _CtxView(ctx, self._alias),
                                   self.item)

    def run_insert_fields(self, params: Params, ctx: Mapping[str, Any]
                          ) -> dict[str, Any]:
        assert self.spec.insert_fn is not None
        return self.spec.insert_fn(params, _CtxView(ctx, self._alias),
                                   self.item)

    def run_check(self, params: Params, ctx: Mapping[str, Any]) -> bool:
        assert self.spec.predicate is not None
        return bool(self.spec.predicate(params, _CtxView(ctx, self._alias),
                                        self.item))

    def _record_spec(self) -> OpSpec | None:
        """The spec whose key identifies the record this op touches."""
        if self.spec.kind is OpKind.CHECK:
            return None
        if self.spec.kind in (OpKind.UPDATE, OpKind.DELETE):
            return self.proc.op(self.spec.target)
        return self.spec

    def __repr__(self) -> str:
        return f"OpInstance({self.name}:{self.spec.kind.value})"


class StoredProcedure:
    """An ordered, validated list of operation templates."""

    def __init__(self, name: str, params: tuple[str, ...],
                 ops: list[OpSpec]):
        self.name = name
        self.params = tuple(params)
        self.ops = list(ops)
        self._by_name: dict[str, OpSpec] = {}
        self._validate()

    def op(self, name: str) -> OpSpec:
        return self._by_name[name]

    def op_names(self) -> list[str]:
        return [op.name for op in self.ops]

    # -- instantiation -------------------------------------------------------

    def instantiate(self, params: Params) -> list[OpInstance]:
        """Expand templates into concrete per-transaction op instances."""
        instances: list[OpInstance] = []
        for spec in self.ops:
            if spec.foreach is None:
                instances.append(OpInstance(spec, self))
            else:
                items = params[spec.foreach]
                for i, item in enumerate(items):
                    instances.append(OpInstance(spec, self, item, i))
        return instances

    def _alias_map(self, spec: OpSpec, index: int | None) -> dict[str, str]:
        """Template-name -> instance-name map for one foreach index."""
        if index is None:
            return {}
        alias: dict[str, str] = {}
        deps = (set(spec.pk_sources()) | set(spec.all_value_deps()))
        for dep in deps:
            dep_spec = self._by_name.get(dep)
            if dep_spec is not None and dep_spec.foreach == spec.foreach:
                alias[dep] = f"{dep}[{index}]"
        return alias

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        seen: set[str] = set()
        updated_targets: set[str] = set()
        for spec in self.ops:
            if spec.name in seen:
                raise ValueError(f"duplicate op name {spec.name!r}")
            self._validate_shape(spec)
            for dep in (set(spec.pk_sources()) | set(spec.all_value_deps())):
                if dep not in seen:
                    raise ValueError(
                        f"op {spec.name!r} depends on {dep!r}, which is "
                        f"not declared earlier in the procedure")
            if spec.foreach is not None and spec.foreach not in self.params:
                raise ValueError(
                    f"op {spec.name!r} iterates over unknown parameter "
                    f"{spec.foreach!r}")
            if spec.kind in (OpKind.UPDATE, OpKind.DELETE):
                target = self._by_name[spec.target]
                if target.kind is not OpKind.READ:
                    raise ValueError(
                        f"op {spec.name!r} targets {spec.target!r}, which "
                        f"is not a READ")
                if spec.foreach != target.foreach:
                    raise ValueError(
                        f"op {spec.name!r} and its target must share the "
                        f"same foreach group")
                updated_targets.add(spec.target)
            seen.add(spec.name)
            self._by_name[spec.name] = spec
        # reads that get updated later must hold the write lock up front
        for name in updated_targets:
            read_spec = self._by_name[name]
            if read_spec.lock is not LockMode.EXCLUSIVE:
                raise ValueError(
                    f"read {name!r} is updated later; declare it with "
                    f"for_update=True so the write lock is taken up front")

    @staticmethod
    def _validate_shape(spec: OpSpec) -> None:
        kind = spec.kind
        if kind in (OpKind.READ, OpKind.INSERT):
            if spec.table is None or spec.key is None:
                raise ValueError(f"{kind.value} op {spec.name!r} needs "
                                 f"table and key")
        if kind in (OpKind.UPDATE, OpKind.DELETE) and spec.target is None:
            raise ValueError(f"{kind.value} op {spec.name!r} needs a target")
        if kind is OpKind.UPDATE and spec.update_fn is None:
            raise ValueError(f"update op {spec.name!r} needs set_fn")
        if kind is OpKind.INSERT and spec.insert_fn is None:
            raise ValueError(f"insert op {spec.name!r} needs fields_fn")
        if kind is OpKind.CHECK and spec.predicate is None:
            raise ValueError(f"check op {spec.name!r} needs a predicate")

    def __repr__(self) -> str:
        return f"StoredProcedure({self.name}, {len(self.ops)} ops)"


class ProcedureRegistry:
    """Registered procedures with their (cached) dependency graphs."""

    def __init__(self) -> None:
        self._procs: dict[str, StoredProcedure] = {}
        self._graphs: dict[str, Any] = {}

    def register(self, proc: StoredProcedure) -> None:
        from .dependency import DependencyGraph  # local: avoid cycle
        if proc.name in self._procs:
            raise ValueError(f"procedure {proc.name!r} already registered")
        self._procs[proc.name] = proc
        self._graphs[proc.name] = DependencyGraph.from_procedure(proc)

    def get(self, name: str) -> StoredProcedure:
        return self._procs[name]

    def graph(self, name: str) -> Any:
        return self._graphs[name]

    def names(self) -> list[str]:
        return list(self._procs)

    def __contains__(self, name: str) -> bool:
        return name in self._procs
