"""Static analysis of stored procedures: op IR, keys, dependency graphs."""

from .dependency import DependencyGraph
from .keys import DerivedKey, KeyExpr, ParamKey, derived_key, param_key
from .ops import OpKind, OpSpec, check, delete, insert, read, update
from .procedures import (OpInstance, Placement, ProcedureRegistry,
                         StoredProcedure)

__all__ = [
    "DependencyGraph",
    "DerivedKey",
    "KeyExpr",
    "OpInstance",
    "OpKind",
    "OpSpec",
    "ParamKey",
    "Placement",
    "ProcedureRegistry",
    "StoredProcedure",
    "check",
    "delete",
    "derived_key",
    "insert",
    "param_key",
    "read",
    "update",
]
