"""Section 7.2 in miniature: partition the Instacart-like workload
three ways and race them.

    python examples/instacart_partitioning.py

Trains hash placement, Schism's co-access min-cut, and Chiller's
contention-aware star cut on the same basket trace, then measures
throughput, distributed-transaction ratio, and lookup-table size —
the data behind Figs. 7-8 and the Section 7.2.2 table.
"""

from repro.bench.experiments import instacart_config
from repro.bench.setups import (build_instacart_layout,
                                build_instacart_setup, make_instacart_run)

N_PARTITIONS = 4


def main():
    print(f"training layouts on a basket trace "
          f"({N_PARTITIONS} partitions)...")
    setup = build_instacart_setup(N_PARTITIONS, n_train=1500)

    hottest = sorted(setup.likelihoods.items(), key=lambda kv: -kv[1])[:5]
    print("\nhottest records by contention likelihood (the 'bananas'):")
    for (table, key), pc in hottest:
        print(f"  {table}[{key}]  Pc={pc:.4f}")

    print(f"\n{'layout':>8} {'throughput':>12} {'abort':>7} "
          f"{'distributed':>12} {'lookup entries':>15} {'train (s)':>10}")
    for name in ("hashing", "schism", "chiller"):
        layout = build_instacart_layout(setup, name)
        run = make_instacart_run(setup, layout,
                                 instacart_config(N_PARTITIONS,
                                                  quick=True))
        result = run.run()
        metrics = result.metrics
        print(f"{name:>8} {result.throughput / 1e3:>10.0f}k "
              f"{metrics.abort_rate():>7.2f} "
              f"{metrics.distributed_ratio():>12.2f} "
              f"{layout.lookup_table_size:>15} "
              f"{layout.partition_seconds:>10.2f}")

    print("\nNote the paper's point: Chiller has MORE distributed "
          "transactions\nthan Schism yet the highest throughput — "
          "contention, not distribution,\nis what limits scaling on "
          "fast networks.")


if __name__ == "__main__":
    main()
