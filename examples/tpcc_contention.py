"""Section 7.3 in miniature: full TPC-C under rising concurrency.

    python examples/tpcc_contention.py

Every NewOrder increments one of ten district counters; every Payment
updates the single warehouse total that all NewOrders also read-share.
Watch 2PL and OCC collapse as concurrent transactions per warehouse
increase while Chiller — same warehouse partitioning, two-region
execution — keeps climbing with a near-zero abort rate (Figs. 9a/9b),
and watch Payment starve under 2PL (Fig. 9c).
"""

from repro.bench.experiments import fig9_rows

CONCURRENCY = (1, 2, 4, 8)


def main():
    rows = fig9_rows(concurrency=CONCURRENCY, n_partitions=4, quick=True)

    print(f"{'conc':>4} | {'throughput (K txns/s)':^28} | "
          f"{'abort rate':^22}")
    print(f"{'':>4} | {'2pl':>8} {'occ':>8} {'chiller':>9} | "
          f"{'2pl':>6} {'occ':>6} {'chiller':>8}")
    for row in rows:
        print(f"{row['concurrent']:>4} | "
              f"{row['2pl_throughput'] / 1e3:>8.0f} "
              f"{row['occ_throughput'] / 1e3:>8.0f} "
              f"{row['chiller_throughput'] / 1e3:>9.0f} | "
              f"{row['2pl_abort_rate']:>6.2f} "
              f"{row['occ_abort_rate']:>6.2f} "
              f"{row['chiller_abort_rate']:>8.2f}")

    print("\nPayment starvation under 2PL (Fig. 9c):")
    print(f"{'conc':>4} {'new_order':>10} {'payment':>9} "
          f"{'stock_level':>12}")
    for row in rows:
        print(f"{row['concurrent']:>4} "
              f"{row['2pl_new_order_abort']:>10.2f} "
              f"{row['2pl_payment_abort']:>9.2f} "
              f"{row['2pl_stock_level_abort']:>12.2f}")


if __name__ == "__main__":
    main()
