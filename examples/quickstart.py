"""Quickstart: build a cluster, run a contended workload, compare
traditional 2PL against Chiller's two-region execution.

    python examples/quickstart.py

The bank workload concentrates 70% of transfers on a few hot accounts.
Chiller places those accounts in its hot-record table; transfers
touching them execute the hot part as an inner region, shrinking the
hot locks' contention span from two network round trips to a local
critical section.
"""

from repro.analysis import ProcedureRegistry
from repro.bench import RunConfig, run_benchmark
from repro.core import ChillerExecutor, HotRecordTable
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, HistoryRecorder, TwoPLExecutor
from repro.workloads.bank import BankWorkload

N_PARTITIONS = 4
HOT_ACCOUNTS = 5


def build_database(workload, config, scheme):
    cluster = Cluster(config.n_partitions, config.network)
    registry = ProcedureRegistry()
    for proc in workload.procedures():
        registry.register(proc)
    db = Database(cluster, Catalog(config.n_partitions, scheme),
                  workload.tables(), registry,
                  n_replicas=config.n_replicas)
    workload.populate(db.loader())
    return db


def run(executor_name):
    workload = BankWorkload(n_accounts=200, hot_accounts=HOT_ACCOUNTS,
                            hot_probability=0.7)
    config = RunConfig(n_partitions=N_PARTITIONS,
                       concurrent_per_engine=4,
                       horizon_us=10_000.0, warmup_us=1_000.0,
                       seed=1, n_replicas=1)
    history = HistoryRecorder()
    fallback = HashScheme(config.n_partitions)
    if executor_name == "2pl":
        db = build_database(workload, config, fallback)
        executor = TwoPLExecutor(db, history=history)
    else:
        # Chiller's two halves: (1) the lookup table CO-LOCATES the hot
        # accounts on one partition; (2) transactions touching them run
        # that part as a unilaterally-committing inner region.
        hot = HotRecordTable({("accounts", a): 0
                              for a in range(HOT_ACCOUNTS)})
        db = build_database(workload, config, hot.scheme(fallback))
        executor = ChillerExecutor(db, hot, history=history)
    result = run_benchmark(workload, executor, config)

    total = sum(
        db.store(db.partition_of("accounts", a))
        .read("accounts", a)[0]["balance"]
        for a in range(workload.n_accounts))
    assert total == workload.total_balance(), "money must be conserved!"
    assert result.history.find_cycle() is None, "must be serializable!"
    return result


def main():
    print(f"{'executor':>10} {'throughput':>12} {'abort rate':>11} "
          f"{'p95 latency':>12}")
    for name in ("2pl", "chiller"):
        result = run(name)
        metrics = result.metrics
        print(f"{name:>10} {result.throughput / 1e3:>10.0f}k "
              f"{metrics.abort_rate():>11.2f} "
              f"{metrics.percentile_latency(0.95):>10.1f}us")
    print("\nBoth executions were verified serializable and "
          "balance-conserving.")


if __name__ == "__main__":
    main()
