"""The paper's Fig. 4 walkthrough: compile and run the flight-booking
stored procedure under two-region execution.

    python examples/flight_booking.py

Shows the dependency graph the static analysis builds (pk-deps vs
v-deps), the inner/outer split the run-time planner chooses when the
flight record is hot, and the effects of one executed booking —
including the customer debit that consumes the ticket cost computed
*inside* the inner region.
"""

from repro.analysis import DependencyGraph, ProcedureRegistry
from repro.core import ChillerExecutor, HotRecordTable, RegionPlanner
from repro.partitioning import HashScheme
from repro.sim import Cluster
from repro.storage import Catalog
from repro.txn import Database, TxnRequest
from repro.workloads.flightbooking import (FLIGHT_TABLES,
                                           flight_booking_procedure,
                                           flight_routing, populate)

FLIGHT, CUSTOMER = 7, 3


def main():
    proc = flight_booking_procedure()

    print("== Static analysis: dependency graph (Fig. 4, step 1) ==")
    graph = DependencyGraph.from_procedure(proc)
    print(f"pk-deps (solid): {graph.pk_edges}")
    print(f"v-deps (dashed): {graph.v_edges}")
    print(f"conditional ops (blue): {sorted(graph.conditional)}")
    print("\nGraphViz:\n" + graph.to_dot())

    n_partitions = 3
    cluster = Cluster(n_partitions)
    registry = ProcedureRegistry()
    registry.register(proc)
    scheme = HashScheme(n_partitions, routing=flight_routing)
    db = Database(cluster, Catalog(n_partitions, scheme), FLIGHT_TABLES,
                  registry, n_replicas=1)
    populate(db.loader())

    flight_pid = scheme.partition_of("flight", FLIGHT)
    hot = HotRecordTable({("flight", FLIGHT): flight_pid})
    executor = ChillerExecutor(db, hot)

    print("\n== Run-time decision (Fig. 4, steps 1-2) ==")
    params = {"flight_id": FLIGHT, "cust_id": CUSTOMER}
    home = (flight_pid + 1) % n_partitions
    planner = executor.make_planner(home)
    plan = planner.plan(proc.instantiate(params), params)
    print(f"flight record is hot on partition {flight_pid}")
    print(f"two-region: {plan.two_region}, inner host: {plan.inner_host}")
    print(f"inner region: {[inst.name for inst in plan.inner]}")
    print(f"outer region: {[inst.name for inst in plan.outer]}")

    print("\n== Execution (steps 3-5) ==")
    outcomes = []
    request = TxnRequest("book_flight", params, home=home)
    cluster.engine(home).spawn(executor.execute(request), outcomes.append)
    cluster.run()
    outcome = outcomes[0]
    print(f"outcome: {outcome}")
    print(f"latency: {outcome.latency:.2f}us, "
          f"partitions touched: {sorted(outcome.partitions)}")

    store = db.store(flight_pid)
    flight = store.read("flight", FLIGHT)[0]
    seat = store.read("seats", (FLIGHT, flight["seats"] + 1))
    cpid = db.partition_of("customer", CUSTOMER)
    customer = db.store(cpid).read("customer", CUSTOMER)[0]
    print(f"flight seats left: {flight['seats']}")
    print(f"seat record created: {seat[0] if seat else None}")
    print(f"customer balance after debit: {customer['balance']:.2f} "
          f"(cost was computed in the inner region and shipped back)")


if __name__ == "__main__":
    main()
